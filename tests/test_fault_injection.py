"""Fault injection: lifetime checkpoints, crash recovery, and the
golden invariance contract.

The acceptance bar of the fault plane (ISSUE 4): a BSP run with
injected crashes and storage retries must produce a loss trajectory
*bit-identical* to the fault-free run of the same statistical config —
only clocks, dollars and the time breakdown may move — and a fault-axis
sweep under ``--substrate auto`` must record exactly one trace however
many fault points the grid holds.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.context import JobContext
from repro.core.driver import train
from repro.faas.checkpoint import Checkpoint
from repro.simulation.commands import Get, Put, Sleep
from repro.simulation.engine import Engine, ProcessState
from repro.storage.services import S3Store
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.utils.serialization import SizedPayload

#: Down-scaled LR/Higgs MA-SGD job: ~0.3 s host wall per exact run.
FAST_BASE = dict(
    model="lr", dataset="higgs", algorithm="ma_sgd",
    workers=4, batch_size=10_000, lr=0.05, data_scale=5000,
    loss_threshold=None, max_epochs=4, seed=3,
)


def loss_trajectory(result):
    """The statistical story of a run, stripped of simulated time.

    ``time_s`` necessarily moves under faults (recovery takes time), so
    the invariance contract is over ``(epoch, worker, loss)`` — with
    the *losses compared bitwise* — plus the record multiset being
    exactly the fault-free one (no duplicates from re-executed rounds,
    no holes from lost incarnations).
    """
    return sorted((p.epoch, p.worker, p.loss) for p in result.history)


class TestLifetimeCheckpointing:
    def _short_lifetime_config(self, lifetime_s: float = 120.0) -> TrainingConfig:
        return TrainingConfig(
            model="lr",
            dataset="higgs",
            algorithm="ma_sgd",
            system="lambdaml",
            workers=4,
            channel="s3",
            batch_size=10_000,
            lr=0.05,
            lambda_lifetime_s=lifetime_s,
            loss_threshold=None,
            max_epochs=12,
            seed=3,
        )

    def test_short_lifetime_triggers_checkpoints(self):
        result = train(self._short_lifetime_config())
        assert result.checkpoints > 0
        assert result.breakdown.get("checkpoint") > 0

    @pytest.mark.slow
    def test_checkpointing_does_not_change_statistics(self):
        """Lifetime resets cost time but never perturb the math."""
        short = train(self._short_lifetime_config(lifetime_s=120.0))
        long = train(
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd",
                system="lambdaml", workers=4, channel="s3",
                batch_size=10_000, lr=0.05, loss_threshold=None,
                max_epochs=12, seed=3,
            )
        )
        assert short.final_loss == pytest.approx(long.final_loss)
        assert short.epochs == long.epochs
        assert short.duration_s > long.duration_s  # overhead is real

    def test_extra_invocations_billed(self):
        result = train(self._short_lifetime_config())
        # 1 initial + checkpoints re-invocations, all billed.
        assert result.checkpoints > 0
        assert result.cost_breakdown["lambda"] > 0


class TestCrashRecovery:
    """A killed worker's successor resumes from its S3 checkpoint."""

    def test_kill_and_resume_from_checkpoint(self):
        engine = Engine(on_error="record")
        store = S3Store()
        progress = []

        def worker(start_step: int):
            params = None
            if start_step > 0:
                obj = yield Get(store, "ckpt/worker_00000")
                params = obj.value.params
            state = np.zeros(4) if params is None else params
            step = start_step
            while step < 10:
                state = state + 1.0
                yield Sleep(1.0, "compute")
                ckpt = Checkpoint(0, float(step), step, state.copy(), 0.0)
                yield Put(store, ckpt.key(), SizedPayload(ckpt, 64))
                progress.append(step)
                step += 1
            return state

        first = engine.spawn(worker(0), "incarnation-1")
        engine.run(until=4.5)  # crash mid-flight
        engine.kill(first)
        assert first.state is ProcessState.KILLED

        # The self-trigger starts a successor from the last checkpoint.
        last_done = max(progress)
        second = engine.spawn(worker(last_done + 1), "incarnation-2")
        engine.run()
        assert second.state is ProcessState.DONE
        # Work was conserved: final counter equals total steps.
        np.testing.assert_allclose(second.result, np.full(4, 10.0))

    def test_checkpoint_object_roundtrips_through_storage(self):
        engine = Engine()
        store = S3Store()
        original = Checkpoint(2, 3.5, 7, np.arange(5.0), 0.42)

        def proc():
            yield Put(store, original.key(), SizedPayload(original, 128))
            restored = yield Get(store, original.key())
            return restored.value

        p = engine.spawn(proc(), "p")
        engine.run()
        assert p.result.rank == 2
        assert p.result.epoch_float == 3.5
        assert p.result.round_index == 7
        np.testing.assert_allclose(p.result.params, np.arange(5.0))


class TestGoldenFaultInvariance:
    """Crashes and retries move clocks and dollars, never the floats."""

    def test_faas_crashes_leave_the_trajectory_bit_identical(self):
        clean = train(TrainingConfig(system="lambdaml", channel="s3", **FAST_BASE))
        faulty = train(
            TrainingConfig(system="lambdaml", channel="s3", mttf_s=60.0, **FAST_BASE)
        )
        events = faulty.events
        assert events["crashes"] > 0
        assert events["reincarnations"] == events["crashes"]
        assert events["recovery_checkpoints"] > 0
        assert faulty.checkpoints > 0
        # The statistical story is untouched, bit for bit.
        assert loss_trajectory(faulty) == loss_trajectory(clean)
        assert faulty.final_loss == clean.final_loss
        assert faulty.epochs == clean.epochs
        # The systems story is not: recovery costs real time and money.
        assert faulty.duration_s > clean.duration_s
        assert faulty.cost_total > clean.cost_total
        assert clean.events["crashes"] == 0

    def test_faas_crash_runs_are_reproducible(self):
        config = TrainingConfig(system="lambdaml", channel="s3", mttf_s=60.0, **FAST_BASE)
        first = train(config)
        second = train(config)
        assert first.duration_s == second.duration_s
        assert first.cost_total == second.cost_total
        assert first.events == second.events
        assert loss_trajectory(first) == loss_trajectory(second)

    def test_storage_retries_leave_the_trajectory_bit_identical(self):
        clean = train(TrainingConfig(system="lambdaml", channel="s3", **FAST_BASE))
        flaky = train(
            TrainingConfig(
                system="lambdaml", channel="s3", storage_error_rate=0.05, **FAST_BASE
            )
        )
        assert flaky.events["storage_errors"] > 0
        assert flaky.events["storage_retries"] == flaky.events["storage_errors"]
        assert flaky.events["storage_backoff_s"] > 0
        assert loss_trajectory(flaky) == loss_trajectory(clean)
        assert flaky.final_loss == clean.final_loss
        assert flaky.duration_s > clean.duration_s
        assert flaky.cost_total > clean.cost_total  # retried requests are billed

    def test_iaas_crash_restarts_from_scratch(self):
        clean = train(TrainingConfig(system="pytorch", **FAST_BASE))
        faulty = train(TrainingConfig(system="pytorch", mttf_s=200.0, **FAST_BASE))
        assert faulty.events["restarts"] > 0
        assert faulty.events["reincarnations"] == 0  # no FaaS-style recovery
        assert faulty.checkpoints == 0  # IaaS baseline never checkpoints
        assert loss_trajectory(faulty) == loss_trajectory(clean)
        assert faulty.final_loss == clean.final_loss
        # Restart-from-scratch pays at least one whole lost attempt.
        assert faulty.duration_s > clean.duration_s

    def test_crashes_and_retries_compose(self):
        clean = train(TrainingConfig(system="lambdaml", channel="s3", **FAST_BASE))
        stormy = train(
            TrainingConfig(
                system="lambdaml", channel="s3", mttf_s=90.0,
                storage_error_rate=0.02, cold_start_jitter=0.5, **FAST_BASE
            )
        )
        assert stormy.events["crashes"] > 0
        assert stormy.events["storage_errors"] > 0
        assert loss_trajectory(stormy) == loss_trajectory(clean)
        assert stormy.final_loss == clean.final_loss

    def test_scatterreduce_survives_crashes_too(self):
        clean = train(
            TrainingConfig(
                system="lambdaml", channel="s3", pattern="scatterreduce", **FAST_BASE
            )
        )
        faulty = train(
            TrainingConfig(
                system="lambdaml", channel="s3", pattern="scatterreduce",
                mttf_s=60.0, **FAST_BASE
            )
        )
        assert faulty.events["crashes"] > 0
        assert loss_trajectory(faulty) == loss_trajectory(clean)
        assert faulty.final_loss == clean.final_loss


class TestFaultSweeps:
    """Fault axes are systems axes: one trace serves the whole grid."""

    def _fault_grid(self):
        base = dict(system="lambdaml", channel="s3", **FAST_BASE)
        points = [
            SweepPoint(
                "fault-grid", f"mttf={mttf}", config_kwargs=dict(base, mttf_s=mttf)
            )
            for mttf in (None, 120.0, 60.0)
        ]
        points.append(
            SweepPoint(
                "fault-grid", "flaky-storage",
                config_kwargs=dict(base, storage_error_rate=0.05),
            )
        )
        return points

    def test_auto_sweep_records_one_trace_for_n_fault_points(self, tmp_path):
        points = self._fault_grid()
        run = run_sweep(points, out_dir=tmp_path, substrate="auto")
        assert run.stat_groups == 1
        assert run.recorded == 1
        assert run.replayed == len(points) - 1
        assert run.exact_runs == 0
        traces = list((tmp_path / "traces").glob("*.json"))
        assert len(traces) == 1
        # Every artifact shares the statistical outcome...
        losses = {a["result"]["final_loss"] for a in run.artifacts}
        assert len(losses) == 1
        # ...but the fault points paid for their reliability.
        durations = [a["result"]["duration_s"] for a in run.artifacts]
        assert durations[1] > durations[0]
        assert durations[2] > durations[1]  # shorter MTTF, more recovery
        events = run.artifacts[2]["result"]["events"]
        assert events["crashes"] > 0

    @pytest.mark.slow
    def test_replayed_fault_artifacts_are_bit_identical_to_exact(self, tmp_path):
        points = self._fault_grid()
        exact = run_sweep(points, substrate="exact")
        auto = run_sweep(points, out_dir=tmp_path, substrate="auto")

        def strip_meta(artifact):
            return {k: v for k, v in artifact.items() if k != "meta"}

        for exact_art, auto_art in zip(exact.artifacts, auto.artifacts):
            assert strip_meta(exact_art) == strip_meta(auto_art), exact_art["label"]


def _pool_speed_factors(config_kwargs: dict) -> list[float]:
    """Top-level helper (picklable) for the straggler pool test."""
    ctx = JobContext(TrainingConfig(**config_kwargs))
    return [ctx.worker_speed(rank) for rank in range(ctx.config.workers)]


class TestStragglerDeterminism:
    """Same seed => same per-rank speed factors, everywhere.

    The jitter is a pure function of (rank, workers, straggler_jitter):
    no RNG is involved, so FaaS, IaaS and hybrid runs — and every
    worker of a ``--jobs N`` sweep pool — must agree on each rank's
    *relative* slowdown bit for bit.
    """

    JITTER = 0.37

    def _kwargs(self, system, **extra):
        kw = dict(
            model="lr", dataset="higgs", workers=6, batch_size=10_000,
            lr=0.05, data_scale=5000, straggler_jitter=self.JITTER, seed=3,
            algorithm="ga_sgd", system=system,
        )
        kw.update(extra)
        return kw

    def _relative_speeds(self, system, **extra) -> list[float]:
        ctx = JobContext(TrainingConfig(**self._kwargs(system, **extra)))
        speeds = [ctx.worker_speed(rank) for rank in range(ctx.config.workers)]
        return [speed / speeds[0] for speed in speeds]

    def test_same_seed_same_factors_across_platforms(self):
        faas = self._relative_speeds("lambdaml")
        iaas = self._relative_speeds("pytorch")
        hybrid = self._relative_speeds("hybridps")
        # FaaS and hybrid share the Lambda base speed: bitwise equal.
        assert faas == hybrid
        # IaaS divides a different base out, which may land one ulp
        # away; the jitter curve itself is identical.
        assert iaas == pytest.approx(faas, rel=1e-14)
        expected = [1.0 / (1.0 + self.JITTER * rank / 5) for rank in range(6)]
        assert faas == pytest.approx(expected, rel=1e-12)

    def test_factors_are_stable_across_repeated_contexts(self):
        assert self._relative_speeds("lambdaml") == self._relative_speeds("lambdaml")

    def test_factors_survive_the_process_pool_boundary(self):
        """A pooled sweep worker computes the exact same speeds."""
        kwargs = self._kwargs("lambdaml")
        inline = _pool_speed_factors(kwargs)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        with ctx.Pool(processes=2) as pool:
            pooled = pool.map(_pool_speed_factors, [kwargs, kwargs])
        assert pooled[0] == inline
        assert pooled[1] == inline


class TestStragglerInjection:
    def test_stragglers_slow_bsp_rounds(self):
        def run_with(jitter: float):
            return train(
                TrainingConfig(
                    model="lr", dataset="higgs", algorithm="ma_sgd",
                    system="lambdaml", workers=6, channel="s3",
                    batch_size=10_000, lr=0.05, loss_threshold=None,
                    max_epochs=5, straggler_jitter=jitter, seed=3,
                )
            )

        uniform = run_with(0.0)
        skewed = run_with(0.5)
        assert skewed.duration_s > uniform.duration_s
        # Statistics are unaffected: same merged math either way.
        assert skewed.final_loss == pytest.approx(uniform.final_loss)

    def test_stragglers_increase_wait_not_compute_of_fastest(self):
        result = train(
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd",
                system="lambdaml", workers=6, channel="s3",
                batch_size=10_000, lr=0.05, loss_threshold=None,
                max_epochs=5, straggler_jitter=0.5, seed=3,
            )
        )
        fastest = result.per_worker[0]
        slowest = result.per_worker[-1]
        assert slowest.get("compute") > fastest.get("compute")
        # The fast worker pays for the slow one in waiting time.
        assert fastest.get("wait") + fastest.get("merge") > 0


class TestCheckpointInterval:
    """``checkpoint_interval`` trades checkpoint overhead for recovery
    re-execution — a pure systems knob, invisible to statistics."""

    def test_interval_must_be_positive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="checkpoint_interval"):
            TrainingConfig(checkpoint_interval=0, **FAST_BASE)

    def test_sparser_checkpoints_same_statistics(self):
        every = train(
            TrainingConfig(system="lambdaml", channel="s3", mttf_s=60.0, **FAST_BASE)
        )
        sparse = train(
            TrainingConfig(
                system="lambdaml", channel="s3", mttf_s=60.0,
                checkpoint_interval=4, **FAST_BASE,
            )
        )
        clean = train(TrainingConfig(system="lambdaml", channel="s3", **FAST_BASE))
        # Fewer recovery checkpoints taken; identical statistical story.
        assert 0 < sparse.events["recovery_checkpoints"] < every.events["recovery_checkpoints"]
        assert loss_trajectory(sparse) == loss_trajectory(every) == loss_trajectory(clean)
        # Sparser checkpoints expose longer re-execution windows, so the
        # clock (and the crash count along it) can only grow.
        assert sparse.duration_s > every.duration_s > clean.duration_s

    def test_interval_is_not_a_statistical_axis(self):
        from repro.core.config import STAT_FIELDS

        assert "checkpoint_interval" not in STAT_FIELDS
        a = TrainingConfig(
            system="lambdaml", channel="s3", mttf_s=60.0, **FAST_BASE
        )
        b = TrainingConfig(
            system="lambdaml", channel="s3", mttf_s=60.0,
            checkpoint_interval=4, **FAST_BASE,
        )
        assert a.stat_hash() == b.stat_hash()


class TestStorageExhaustionRecovery:
    """A worker that dies of retry exhaustion is re-invoked from its
    last checkpoint, exactly like a crash — the trajectory never moves."""

    def test_exhaustion_recovers_bit_identically(self):
        exhausted = train(
            TrainingConfig(
                system="lambdaml", channel="s3", mttf_s=60.0,
                storage_error_rate=0.4, storage_retry_limit=1, **FAST_BASE,
            )
        )
        clean = train(TrainingConfig(system="lambdaml", channel="s3", **FAST_BASE))
        events = exhausted.events
        assert events["storage_exhaustions"] > 0
        # Every exhaustion (and every crash) spawned a successor.
        assert events["reincarnations"] > events["crashes"]
        assert loss_trajectory(exhausted) == loss_trajectory(clean)
        assert exhausted.duration_s > clean.duration_s
        assert exhausted.cost_total > clean.cost_total

    def test_exhaustion_without_crash_machinery_is_fatal(self):
        from repro.errors import TransientStorageError

        # No mttf_s: no recovery machinery is installed, so blowing the
        # retry budget fails the job instead of silently retrying forever.
        with pytest.raises(TransientStorageError, match="exhausting"):
            train(
                TrainingConfig(
                    system="lambdaml", channel="s3",
                    storage_error_rate=0.4, storage_retry_limit=1, **FAST_BASE,
                )
            )

    def test_exhaustion_counts_surface_in_sweep_artifacts(self, tmp_path):
        point = SweepPoint(
            experiment="chaos", label="exhaustion",
            config_kwargs=dict(
                system="lambdaml", channel="s3", mttf_s=60.0,
                storage_error_rate=0.4, storage_retry_limit=1, **FAST_BASE,
            ),
        )
        run = run_sweep([point], out_dir=tmp_path)
        events = run.artifacts[0]["result"]["events"]
        assert events["storage_exhaustions"] > 0
        assert events["reincarnations"] > 0


class TestServiceFaultIsolation:
    """A crashing tenant on the shared service engine stays contained:
    neighbours' loss trajectories are bit-identical to their isolated
    runs, and retention GC keeps collecting under crash injection."""

    CLEAN = dict(system="lambdaml", channel="s3", **FAST_BASE)
    CRASHY = dict(system="lambdaml", channel="s3", mttf_s=60.0, **FAST_BASE)

    def _service_run(self):
        from repro.service import (
            BaselineProvider,
            JobRequest,
            ServiceRuntime,
            make_scheduler,
        )

        requests = [
            JobRequest("j000", "acct0", 0.0, dict(self.CLEAN)),
            JobRequest("j001", "acct1", 1.0, dict(self.CRASHY)),
            JobRequest("j002", "acct2", 2.0, dict(self.CLEAN, seed=5)),
        ]
        runtime = ServiceRuntime(
            requests, make_scheduler("fifo"), 3,
            BaselineProvider(policy="exact"),
        )
        records = runtime.run()
        return runtime, {r["job"]: r for r in records}

    def test_neighbours_bit_identical_to_isolated_runs(self):
        runtime, by_job = self._service_run()
        assert by_job["j001"]["crashes"] > 0
        assert by_job["j000"]["crashes"] == 0
        assert by_job["j002"]["crashes"] == 0
        # Every tenant — the crashing one included — reproduces its
        # isolated trajectory exactly, despite sharing one engine and
        # one S3 capacity queue with a neighbour that keeps dying.
        for job, kwargs in (
            ("j000", self.CLEAN),
            ("j001", self.CRASHY),
            ("j002", dict(self.CLEAN, seed=5)),
        ):
            isolated = train(TrainingConfig(**kwargs))
            assert loss_trajectory(runtime.results[job]) == loss_trajectory(
                isolated
            )

    def test_retention_gc_collects_inside_the_service(self):
        _, by_job = self._service_run()
        assert by_job["j001"]["gc_collected_keys"] > 0
        # Fault-free tenants have no retention window (nothing to
        # collect deferred-style; their round files GC inline).
        assert by_job["j000"]["gc_collected_keys"] == 0
