"""Unit + property tests for dataset specs, generators and partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.data.datasets import DATASETS, get_spec
from repro.data.loader import make_shards
from repro.data.partition import partition_indices
from repro.data.synth import generate
from repro.errors import ConfigurationError


class TestSpecs:
    def test_registry_matches_figure6(self):
        assert get_spec("higgs").n_instances == 11_000_000
        assert get_spec("higgs").n_features == 28
        assert get_spec("rcv1").n_features == 47_236
        assert get_spec("cifar10").n_instances == 60_000
        assert get_spec("yfcc100m").size_mb == pytest.approx(110 * 1024)
        assert get_spec("criteo").n_features == 1_000_000

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            get_spec("mnist")

    def test_partition_bytes(self):
        spec = get_spec("higgs")
        assert spec.partition_bytes(10) == spec.size_bytes // 10
        with pytest.raises(ConfigurationError):
            spec.partition_bytes(0)

    def test_lr_higgs_model_is_224_bytes(self):
        # Table 3 anchor: LR on Higgs ships a 224-byte model.
        assert get_spec("higgs").n_features * 8 == 224


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_generate_shapes(self, name):
        split = generate(name, seed=1)
        spec = get_spec(name)
        assert split.n_features == spec.n_features
        assert split.X_train.shape[0] == split.y_train.shape[0]
        assert split.X_val.shape[0] == split.y_val.shape[0]
        assert split.n_train > split.y_val.shape[0]  # 90/10 split

    def test_caching_returns_same_object(self):
        assert generate("higgs", seed=3) is generate("higgs", seed=3)

    def test_different_seeds_differ(self):
        a = generate("higgs", seed=1)
        b = generate("higgs", seed=2)
        assert not np.array_equal(np.asarray(a.X_train[:5]), np.asarray(b.X_train[:5]))

    def test_sparse_datasets_are_sparse(self):
        assert sparse.issparse(generate("rcv1", seed=1).X_train)
        assert sparse.issparse(generate("criteo", seed=1).X_train)

    def test_binary_labels(self):
        for name in ("higgs", "rcv1", "yfcc100m", "criteo"):
            split = generate(name, seed=1)
            assert set(np.unique(split.y_train)) <= {-1, 1}

    def test_cifar_is_multiclass(self):
        split = generate("cifar10", seed=1)
        assert set(np.unique(split.y_train)) <= set(range(10))

    def test_yfcc_rows_unit_norm(self):
        split = generate("yfcc100m", seed=1)
        norms = np.linalg.norm(np.asarray(split.X_train[:50]), axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-4)

    def test_yfcc_imbalance(self):
        split = generate("yfcc100m", seed=1)
        positives = (split.y_train == 1).mean()
        assert 0.02 < positives < 0.2

    def test_higgs_is_noisy(self):
        # At the calibrated noise level the Bayes accuracy sits well
        # below 80% — this is what makes the 0.66 threshold meaningful.
        split = generate("higgs", seed=1)
        from repro.models.linear import LogisticRegression

        model = LogisticRegression(split.n_features)
        w = np.zeros(split.n_features)
        for _ in range(100):
            w -= 0.3 * model.gradient(w, split.X_train[:20000], split.y_train[:20000])
        assert model.accuracy(w, split.X_val, split.y_val) < 0.8


class TestPartitioning:
    def test_iid_partitions_are_disjoint_and_cover(self):
        parts = partition_indices(100, 7, seed=1)
        joined = np.concatenate(parts)
        assert len(np.unique(joined)) == 100

    def test_label_skew_disjoint(self):
        labels = np.repeat(np.arange(5), 40)
        parts = partition_indices(200, 5, mode="label-skew", labels=labels, seed=2)
        joined = np.concatenate(parts)
        assert len(joined) == len(np.unique(joined))

    def test_label_skew_actually_skews(self):
        labels = np.repeat(np.arange(4), 100)
        parts = partition_indices(
            400, 4, mode="label-skew", labels=labels, skew=0.9, seed=3
        )
        # Each worker's dominant label should account for most rows.
        for rank, part in enumerate(parts):
            counts = np.bincount(labels[part], minlength=4)
            assert counts.max() / counts.sum() > 0.5

    def test_too_many_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_indices(5, 10)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_indices(10, 2, mode="sorted")

    def test_skew_requires_labels(self):
        with pytest.raises(ConfigurationError):
            partition_indices(10, 2, mode="label-skew")


class TestShards:
    def test_shards_have_uniform_size(self):
        split = generate("higgs", seed=1)
        shards = make_shards(split, 7, global_batch=700)
        sizes = {s.n_rows for s in shards}
        assert len(sizes) == 1  # uniform => BSP rounds align

    def test_iterations_per_epoch_uniform(self):
        split = generate("higgs", seed=1)
        shards = make_shards(split, 7, global_batch=700)
        iterations = {s.iterations_per_epoch for s in shards}
        assert len(iterations) == 1

    def test_epoch_batches_cover_shard(self):
        split = generate("higgs", seed=1)
        shard = make_shards(split, 4, global_batch=400)[0]
        seen = sum(len(y) for _, y in shard.epoch_batches())
        assert seen == shard.n_rows

    def test_min_local_batch_floor(self):
        split = generate("higgs", seed=1)
        shards = make_shards(split, 10, global_batch=10, min_local_batch=32)
        assert shards[0].batch_size == 32

    def test_sample_batch_size(self):
        split = generate("higgs", seed=1)
        shard = make_shards(split, 4, global_batch=64)[0]
        X_batch, y_batch = shard.sample_batch()
        assert len(y_batch) == shard.batch_size

    def test_invalid_batch_rejected(self):
        split = generate("higgs", seed=1)
        with pytest.raises(ConfigurationError):
            make_shards(split, 2, global_batch=0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=500),
    workers=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_partitions_disjoint_cover(n, workers, seed):
    if workers > n:
        workers = n
    parts = partition_indices(n, workers, seed=seed)
    joined = np.concatenate(parts)
    assert len(joined) == n
    assert len(np.unique(joined)) == n
    assert all((p >= 0).all() and (p < n).all() for p in parts)
