"""Tests for the serving tier: traffic, registry, autoscalers, runtime,
the figV study and the ServingSession/infer facade.

The pinned regressions here are the tentpole's headline physics: seeded
traffic traces are byte-identical per seed, serving runs are pure
functions of (config, model), bursty FaaS shows a cold-start tail
(p99.9 strictly above p50) that a big-enough always-on IaaS fleet does
not, and figV artifacts are byte-identical between serial and pooled
sweeps.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.serving import (
    ConcurrencyScaler,
    FixedScaler,
    ModelRegistry,
    PoolState,
    QueueDepthScaler,
    ServedModel,
    ServingConfig,
    ServingRuntime,
    arrivals_for,
    make_autoscaler,
    model_load_seconds,
    request_arrivals,
    request_service_seconds,
    serving_hash,
    serving_metrics,
)

MB = 1024 * 1024


def nn_entry(**overrides) -> ServedModel:
    """A 12 MB MobileNet entry without paying for a training run."""
    kwargs = dict(
        name="nn", model="mobilenet", dataset="cifar10",
        param_bytes=12 * MB, final_loss=0.31, converged=True,
        quality="converged@0.3100", training_cost=0.2, training_s=950.0,
        source="test",
    )
    kwargs.update(overrides)
    return ServedModel(**kwargs)


class TestTraffic:
    def test_same_seed_same_trace(self):
        a = request_arrivals(7, "bursty", 20.0, 100)
        b = request_arrivals(7, "bursty", 20.0, 100)
        assert a == b  # byte-identical, not approximately equal

    def test_different_seeds_differ(self):
        assert request_arrivals(7, "poisson", 20.0, 50) != request_arrivals(
            8, "poisson", 20.0, 50
        )

    @pytest.mark.parametrize("shape", ["poisson", "diurnal", "bursty"])
    def test_strictly_increasing(self, shape):
        arrivals = request_arrivals(3, shape, 15.0, 200)
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_poisson_mean_rate(self):
        # 2000 arrivals at 20 r/s should take ~100 s (law of large numbers).
        arrivals = request_arrivals(0, "poisson", 20.0, 2000)
        assert arrivals[-1] == pytest.approx(100.0, rel=0.15)

    def test_shapes_produce_distinct_traces(self):
        traces = {
            shape: tuple(request_arrivals(5, shape, 20.0, 50))
            for shape in ("poisson", "diurnal", "bursty")
        }
        assert len(set(traces.values())) == 3

    def test_bursty_concentrates_arrivals_in_spikes(self):
        arrivals = request_arrivals(
            1, "bursty", 10.0, 400,
            burst_every_s=10.0, burst_len_s=1.0, burst_factor=6.0,
        )
        in_spike = sum(1 for t in arrivals if (t % 10.0) < 1.0)
        # The spike holds 6/15 of the integrated rate over 1/10 of the
        # time; at factor 6 that's ~40% of arrivals in 10% of the window.
        assert in_spike / len(arrivals) > 0.25

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            request_arrivals(0, "poisson", 0.0, 10)
        with pytest.raises(ConfigurationError):
            request_arrivals(0, "poisson", 1.0, 0)
        with pytest.raises(ConfigurationError):
            request_arrivals(0, "square_wave", 1.0, 10)

    def test_arrivals_for_matches_config_knobs(self):
        config = ServingConfig(traffic="diurnal", rate_rps=12.0, requests=30)
        assert arrivals_for(config) == request_arrivals(
            config.seed, "diurnal", 12.0, 30,
            diurnal_period_s=config.diurnal_period_s,
            diurnal_amplitude=config.diurnal_amplitude,
        )


class TestServingConfig:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.platform == "faas"
        assert config.train_kwargs()["model"] == "mobilenet"

    def test_nn_models_get_minibatch_recipe(self):
        kwargs = ServingConfig().train_kwargs()
        assert kwargs["algorithm"] == "ga_sgd"
        assert kwargs["batch_size"] == 32
        # Non-NN models keep the TrainingConfig defaults.
        assert "algorithm" not in ServingConfig(
            model="lr", dataset="higgs"
        ).train_kwargs()

    @pytest.mark.parametrize("kwargs", [
        dict(platform="mainframe"),
        dict(traffic="square_wave"),
        dict(autoscaler="psychic"),
        dict(rate_rps=0.0),
        dict(requests=0),
        dict(diurnal_amplitude=1.0),
        dict(burst_len_s=20.0, burst_every_s=10.0),
        dict(burst_factor=0.5),
        dict(min_replicas=5, max_replicas=2),
        dict(min_replicas=0),
        dict(target_concurrency=0.0),
        dict(queue_threshold=0),
        dict(idle_expiry_s=0.0),
        dict(memory_gb=4.0),
        dict(cold_jitter=-0.1),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs)

    def test_hash_is_stable_and_sensitive(self):
        a, b = ServingConfig(), ServingConfig()
        assert serving_hash(a) == serving_hash(b)
        assert serving_hash(a) != serving_hash(ServingConfig(traffic="bursty"))


class TestRegistry:
    def test_load_seconds_from_size(self):
        # 12 MB over the 65 MB/s S3 envelope plus the 80 ms request.
        assert model_load_seconds(12 * MB) == pytest.approx(
            0.08 + 12 * MB / (65 * MB), rel=1e-12
        )
        with pytest.raises(ConfigurationError):
            model_load_seconds(-1)

    def test_register_artifact_maps_fields(self):
        registry = ModelRegistry()
        entry = registry.register_artifact("m", {
            "config": {"model": "mobilenet", "dataset": "cifar10"},
            "result": {"final_loss": 0.25, "converged": True,
                       "cost_total": 0.5, "duration_s": 100.0},
            "config_hash": "abc123",
        })
        assert entry.param_bytes == 12 * MB
        assert entry.quality == "converged@0.2500"
        assert entry.training_cost == 0.5
        assert entry.source == "abc123"
        assert registry.get("m") is entry

    def test_duplicate_and_unknown_names_rejected(self):
        registry = ModelRegistry()
        registry.register(nn_entry())
        with pytest.raises(ConfigurationError):
            registry.register(nn_entry())
        with pytest.raises(ConfigurationError):
            registry.get("nope")

    def test_draft_quality_tag(self):
        registry = ModelRegistry()
        entry = registry.register_artifact("m", {
            "config": {"model": "lr", "dataset": "higgs"},
            "result": {"final_loss": 0.96, "converged": False,
                       "cost_total": 0.01, "duration_s": 50.0},
            "config_hash": "h",
        })
        assert entry.quality == "draft@0.9600"


class TestAutoscalers:
    def test_fixed_ignores_demand(self):
        scaler = FixedScaler(3, 16)
        assert scaler.desired(PoolState(100, 50, 3, 0), now=0.0) == 3

    def test_concurrency_tracks_demand(self):
        scaler = ConcurrencyScaler(1, 16, target_concurrency=2.0)
        assert scaler.desired(PoolState(0, 0, 1, 1), 0.0) == 1  # clamped up
        assert scaler.desired(PoolState(3, 4, 2, 0), 0.0) == 4  # ceil(7/2)
        assert scaler.desired(PoolState(100, 0, 1, 0), 0.0) == 16  # clamped

    def test_queue_depth_hysteresis(self):
        scaler = QueueDepthScaler(
            1, 16, queue_threshold=4, up_cooldown_s=2.0, down_cooldown_s=30.0
        )
        backlog = PoolState(queued=5, in_flight=2, live=2, idle=0)
        assert scaler.desired(backlog, 0.0) == 2  # stepped 1 -> 2
        assert scaler.desired(backlog, 1.0) == 2  # up-cooldown holds
        assert scaler.desired(backlog, 2.5) == 3  # cooldown elapsed
        drained = PoolState(queued=0, in_flight=0, live=3, idle=3)
        assert scaler.desired(drained, 3.0) == 3  # down-cooldown holds
        assert scaler.desired(drained, 40.0) == 2  # elapsed: step down
        assert scaler.desired(drained, 41.0) == 2  # down-cooldown again

    def test_make_autoscaler_dispatch(self):
        for name, cls in [("fixed", FixedScaler),
                          ("concurrency", ConcurrencyScaler),
                          ("queue_depth", QueueDepthScaler)]:
            assert isinstance(
                make_autoscaler(ServingConfig(autoscaler=name)), cls
            )


class TestServingRuntime:
    def test_run_is_deterministic(self):
        config = ServingConfig(traffic="bursty", requests=120)
        entry = nn_entry()
        r1, p1 = ServingRuntime(config, entry).run()
        r2, p2 = ServingRuntime(config, entry).run()
        assert json.dumps([r1, p1], sort_keys=True) == json.dumps(
            [r2, p2], sort_keys=True
        )

    def test_gpu_serves_faster_than_cpu(self):
        entry = nn_entry()
        faas = request_service_seconds(ServingConfig(), entry)
        gpu = request_service_seconds(
            ServingConfig(platform="gpu_iaas"), entry
        )
        assert gpu < faas / 5  # the calibrated 27x T4 ratio dominates

    def test_every_request_served_in_order(self):
        config = ServingConfig(requests=80)
        records, pool = ServingRuntime(config, nn_entry()).run()
        assert [r["request"] for r in records] == list(range(80))
        assert all(r["latency_s"] >= pool["serve_s"] for r in records)

    def test_cold_start_tail_on_bursty_faas(self):
        """The tentpole's pinned regression: p99.9 strictly above p50."""
        config = ServingConfig(
            platform="faas", traffic="bursty", autoscaler="concurrency",
            requests=300,
        )
        records, pool = ServingRuntime(config, nn_entry()).run()
        metrics = serving_metrics(records, pool)
        assert metrics["p999_latency_s"] > metrics["p50_latency_s"]
        assert metrics["cold_start_fraction"] > 0.0

    def test_no_cold_tail_on_always_on_iaas(self):
        """A pre-booted fleet big enough for the bursts has no tail."""
        config = ServingConfig(
            platform="iaas", traffic="bursty", autoscaler="fixed",
            min_replicas=8, requests=300,
        )
        records, pool = ServingRuntime(config, nn_entry()).run()
        metrics = serving_metrics(records, pool)
        assert metrics["cold_starts"] == 0
        assert metrics["cold_start_fraction"] == 0.0
        assert metrics["p999_latency_s"] == metrics["p50_latency_s"]

    def test_faas_idle_expiry_recreates_cold_starts(self):
        # Arrivals ~20 s apart with a 5 s keep-warm window: every
        # request after the first finds its container expired.
        sparse = ServingConfig(
            platform="faas", rate_rps=0.05, requests=4, idle_expiry_s=5.0,
            autoscaler="fixed",
        )
        _, pool = ServingRuntime(sparse, nn_entry()).run()
        assert pool["cold_starts"] >= 3
        # The same trace under a generous window stays warm throughout.
        warm = ServingConfig(
            platform="faas", rate_rps=0.05, requests=4, idle_expiry_s=600.0,
            autoscaler="fixed",
        )
        _, pool = ServingRuntime(warm, nn_entry()).run()
        assert pool["cold_starts"] == 1

    def test_iaas_bills_alive_time_not_usage(self):
        config = ServingConfig(
            platform="iaas", autoscaler="fixed", min_replicas=2, requests=50
        )
        records, pool = ServingRuntime(config, nn_entry()).run()
        assert pool["cost_breakdown"].keys() == {"ec2", "s3"} - {"s3"} or \
            set(pool["cost_breakdown"]) <= {"ec2", "s3"}
        # Two always-on VMs for the whole makespan, at c5.xlarge rates.
        expected = 2 * pool["makespan_s"] / 3600.0 * 0.17
        assert pool["cost_breakdown"]["ec2"] == pytest.approx(expected)

    def test_metrics_reject_empty_records(self):
        with pytest.raises(SimulationError):
            serving_metrics([], {"cold_starts": 0})


@pytest.fixture(scope="module")
def small_pipeline_root(tmp_path_factory) -> Path:
    """One tiny trained lr/higgs pipeline, shared across facade tests."""
    return tmp_path_factory.mktemp("serving_root")


def small_config(**overrides) -> ServingConfig:
    kwargs = dict(
        model="lr", dataset="higgs", data_scale=2000, requests=60,
        traffic="bursty", platform="faas", autoscaler="concurrency",
    )
    kwargs.update(overrides)
    return ServingConfig(**kwargs)


class TestServingSession:
    def test_rooted_run_resumes_byte_identical(self, small_pipeline_root):
        from repro.api import ServingSession

        config = small_config()
        first = ServingSession(small_pipeline_root, config=config).run()
        assert first.ran_requests == config.requests
        assert first.path is not None and first.path.exists()
        again = ServingSession(small_pipeline_root, config=config).run()
        assert again.ran_requests == 0  # resumed, nothing re-simulated
        assert json.dumps(first.data, sort_keys=True) == json.dumps(
            again.data, sort_keys=True
        )

    def test_in_memory_matches_rooted(self, small_pipeline_root):
        from repro.api import ServingSession

        config = small_config()
        rooted = ServingSession(small_pipeline_root, config=config).run()
        in_memory = ServingSession(None, config=config).run()
        assert json.dumps(in_memory.data, sort_keys=True) == json.dumps(
            rooted.data, sort_keys=True
        )

    def test_report_mentions_end_to_end_dollars(self, small_pipeline_root):
        from repro.api import ServingSession

        outcome = ServingSession(
            small_pipeline_root, config=small_config()
        ).run()
        assert "end-to-end" in outcome.report()
        assert outcome.end_to_end_dollars > 0

    def test_corrupt_report_rejected(self, tmp_path):
        from repro.api import ServingSession

        config = small_config(requests=30)
        session = ServingSession(tmp_path, config=config)
        outcome = session.run()
        bad = dict(outcome.data)
        bad["serving_hash"] = "0" * 16
        outcome.path.write_text(json.dumps(bad))
        with pytest.raises(SimulationError):
            ServingSession(tmp_path, config=config).run()


class TestInferCli:
    def test_infer_smoke_and_resume(self, capsys, small_pipeline_root):
        from repro.cli import main

        argv = [
            "infer", "--model", "lr", "--dataset", "higgs",
            "--data-scale", "2000", "--requests", "60",
            "--traffic", "bursty", "--platform", "faas",
            "--autoscaler", "concurrency",
            "--out", str(small_pipeline_root),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "end-to-end" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "report resumed, 0 request(s) re-simulated" in second

    def test_infer_json_output(self, capsys, small_pipeline_root):
        from repro.cli import main

        assert main([
            "infer", "--model", "lr", "--dataset", "higgs",
            "--data-scale", "2000", "--requests", "60",
            "--traffic", "bursty", "--platform", "faas",
            "--autoscaler", "concurrency",
            "--out", str(small_pipeline_root), "--json",
        ]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[: out.rindex("}") + 1])
        assert document["kind"] == "serving_report"
        assert document["metrics"]["requests"] == 60


class TestFigVStudy:
    def test_registered_and_listed(self):
        from repro.api import study_names

        assert "figV" in study_names()

    def test_aggregate_is_pure(self):
        """serve_pipeline over fixed artifacts is fully deterministic."""
        from repro.experiments.fig_serving import serve_pipeline

        artifacts = [
            {
                "tags": {"class": "nn"},
                "config": {"model": "mobilenet", "dataset": "cifar10",
                           "seed": 42},
                "result": {"final_loss": 0.3, "converged": True,
                           "cost_total": 0.2, "duration_s": 950.0},
                "config_hash": "nnhash",
            },
            {
                "tags": {"class": "small"},
                "config": {"model": "lr", "dataset": "higgs", "seed": 42},
                "result": {"final_loss": 0.95, "converged": False,
                           "cost_total": 0.01, "duration_s": 50.0},
                "config_hash": "smallhash",
            },
        ]
        r1 = serve_pipeline(artifacts)
        r2 = serve_pipeline(artifacts)
        assert json.dumps(r1, sort_keys=True) == json.dumps(r2, sort_keys=True)
        assert len(r1["panel"]) == 28  # 3 platforms x 3 traffic x 3 scalers + 1
        cold_free = [c for c in r1["panel"]
                     if c["platform"] != "faas" and c["autoscaler"] == "fixed"]
        assert all(c["cold_start_fraction"] == 0.0 for c in cold_free)

    def test_serial_vs_pooled_artifacts_byte_identical(self, tmp_path):
        """The acceptance criterion: --jobs must not change any byte."""
        from repro.experiments.fig_serving import sweep_points
        from repro.sweep.orchestrator import run_sweep

        serial, pooled = tmp_path / "serial", tmp_path / "pooled"
        for out, jobs in ((serial, 1), (pooled, 2)):
            run_sweep(
                sweep_points(max_epochs=0.2), out_dir=out, jobs=jobs,
                substrate="auto", traces_dir=tmp_path / f"traces{jobs}",
            )
        serial_files = sorted(p.name for p in serial.glob("*.json"))
        pooled_files = sorted(p.name for p in pooled.glob("*.json"))
        assert serial_files == pooled_files and serial_files
        for name in serial_files:
            # Everything outside `meta` (which records host wall-clock)
            # must match byte for byte — same convention as test_sweep.
            a = json.loads((serial / name).read_text())
            b = json.loads((pooled / name).read_text())
            a.pop("meta"), b.pop("meta")
            assert json.dumps(a, sort_keys=True) == json.dumps(
                b, sort_keys=True
            ), name

    def test_format_report_headline(self):
        from repro.experiments.fig_serving import format_report, serve_pipeline

        artifacts = [
            {
                "tags": {"class": "nn"},
                "config": {"model": "mobilenet", "dataset": "cifar10",
                           "seed": 42},
                "result": {"final_loss": 0.3, "converged": True,
                           "cost_total": 0.2, "duration_s": 950.0},
                "config_hash": "nnhash",
            },
            {
                "tags": {"class": "small"},
                "config": {"model": "lr", "dataset": "higgs", "seed": 42},
                "result": {"final_loss": 0.95, "converged": False,
                           "cost_total": 0.01, "duration_s": 50.0},
                "config_hash": "smallhash",
            },
        ]
        text = format_report(serve_pipeline(artifacts))
        assert "bursty tail" in text
        assert "end-to-end" in text
