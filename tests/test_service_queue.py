"""Property tests for the deterministic k-server queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simulation.resources import ServiceQueue


class TestBasics:
    def test_single_slot_serialises(self):
        q = ServiceQueue(1)
        first = q.schedule(0.0, 2.0)
        second = q.schedule(0.0, 2.0)
        assert first == (0.0, 2.0)
        assert second == (2.0, 4.0)

    def test_parallel_slots(self):
        q = ServiceQueue(2)
        a = q.schedule(0.0, 2.0)
        b = q.schedule(0.0, 2.0)
        c = q.schedule(0.0, 2.0)
        assert a[1] == b[1] == 2.0
        assert c == (2.0, 4.0)

    def test_idle_queue_starts_at_arrival(self):
        q = ServiceQueue(3)
        assert q.schedule(10.0, 1.0) == (10.0, 11.0)

    def test_busy_until_tracks_the_most_loaded_slot(self):
        q = ServiceQueue(2)
        assert q.busy_until == 0.0
        q.schedule(0.0, 2.0)
        assert q.busy_until == 2.0
        # The second slot is idle: a new op starts immediately even
        # though busy_until is in the future.
        assert q.schedule(0.0, 1.0) == (0.0, 1.0)
        assert q.busy_until == 2.0  # max over slots, not the last booking

    def test_busy_until_is_monotonically_nondecreasing(self):
        q = ServiceQueue(2)
        seen = [q.busy_until]
        for arrival, duration in ((0.0, 3.0), (1.0, 0.5), (2.0, 0.1), (9.0, 1.0)):
            q.schedule(arrival, duration)
            seen.append(q.busy_until)
        assert seen == sorted(seen)

    def test_queues_are_single_use(self):
        # ServiceQueue deliberately has no reset(): slot bookings are
        # simulated history, and rewinding them mid-run would violate
        # the engine's monotonic clock. Fresh run, fresh queue.
        assert not hasattr(ServiceQueue(1), "reset")

    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceQueue(0)


@settings(max_examples=50, deadline=None)
@given(
    slots=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),  # arrival
            st.floats(min_value=0.01, max_value=10),  # duration
        ),
        min_size=1,
        max_size=30,
    ),
)
def test_property_queue_invariants(slots, ops):
    q = ServiceQueue(slots)
    intervals = []
    for arrival, duration in ops:
        start, end = q.schedule(arrival, duration)
        # Service never starts before arrival and lasts exactly duration.
        assert start >= arrival
        assert end == pytest.approx(start + duration)
        intervals.append((start, end))
    # At no instant are more than `slots` operations in service:
    # check at each start time how many intervals overlap it.
    for probe_start, _ in intervals:
        overlapping = sum(
            1 for s, e in intervals if s <= probe_start < e
        )
        assert overlapping <= slots


@settings(max_examples=30, deadline=None)
@given(
    duration=st.floats(min_value=0.1, max_value=5.0),
    n_ops=st.integers(min_value=1, max_value=20),
    slots=st.integers(min_value=1, max_value=8),
)
def test_property_makespan_formula_for_simultaneous_arrivals(duration, n_ops, slots):
    """n equal ops arriving together finish in ceil(n/slots) waves."""
    import math

    q = ServiceQueue(slots)
    ends = [q.schedule(0.0, duration)[1] for _ in range(n_ops)]
    waves = math.ceil(n_ops / slots)
    assert max(ends) == pytest.approx(waves * duration)
