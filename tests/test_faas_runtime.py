"""FunctionLifetime edge cases: the knife-edge boundaries of Figure 5.

The executor consults ``needs_checkpoint`` at every round boundary and
``ensure_alive`` models the platform's hard kill. Both comparisons are
*inclusive*: a round whose estimate exactly equals the remaining
margin must checkpoint (the margin exists so that knife-edge never
runs), and a function at exactly zero remaining lifetime is already
dead — AWS does not grant one extra instant.
"""

from __future__ import annotations

import pytest

from repro.errors import FunctionTimeoutError
from repro.faas.limits import LambdaLimits
from repro.faas.runtime import FunctionLifetime


def _lifetime(lifetime_s: float = 900.0, margin_s: float = 30.0) -> FunctionLifetime:
    limits = LambdaLimits(lifetime_s=lifetime_s, checkpoint_margin_s=margin_s)
    return FunctionLifetime(limits, started_at=0.0)


class TestNeedsCheckpointBoundary:
    def test_exact_margin_equality_checkpoints(self):
        # remaining = 900 - 600 = 300; margin = 30 + 270 = 300 exactly.
        lt = _lifetime()
        assert lt.needs_checkpoint(600.0, next_round_estimate_s=270.0)

    def test_one_ulp_inside_the_margin_does_not_checkpoint(self):
        lt = _lifetime()
        assert not lt.needs_checkpoint(600.0, next_round_estimate_s=269.0)

    def test_zero_estimate_uses_the_bare_margin_inclusively(self):
        lt = _lifetime()
        assert not lt.needs_checkpoint(869.0)  # remaining 31 > 30
        assert lt.needs_checkpoint(870.0)  # remaining 30 == margin
        assert lt.needs_checkpoint(871.0)  # remaining 29 < margin

    def test_fresh_function_never_needs_checkpoint(self):
        lt = _lifetime()
        assert not lt.needs_checkpoint(0.0)


class TestEnsureAliveBoundary:
    def test_alive_strictly_inside_the_lifetime(self):
        lt = _lifetime()
        lt.ensure_alive(899.999)

    def test_dead_at_exactly_zero_remaining(self):
        lt = _lifetime()
        assert lt.remaining(900.0) == 0.0
        with pytest.raises(FunctionTimeoutError):
            lt.ensure_alive(900.0)

    def test_dead_past_the_wall(self):
        lt = _lifetime()
        with pytest.raises(FunctionTimeoutError):
            lt.ensure_alive(900.001)

    def test_reincarnation_resets_the_clock(self):
        lt = _lifetime()
        lt.reincarnate(895.0)
        lt.ensure_alive(900.0)  # 895 + 900 > 900: alive again
        assert lt.incarnations == 2
        with pytest.raises(FunctionTimeoutError):
            lt.ensure_alive(1795.0)  # exactly one lifetime after restart
