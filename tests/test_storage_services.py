"""Unit tests for the simulated storage services."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ItemTooLargeError
from repro.pricing.meter import CostMeter
from repro.simulation.commands import Get, Put
from repro.simulation.engine import Engine
from repro.storage.base import StorageProfile
from repro.storage.services import (
    DynamoDBStore,
    MemcachedStore,
    RedisStore,
    S3Store,
    VMDiskStore,
    make_channel,
)
from repro.utils.serialization import SizedPayload

MB = 1024 * 1024


class TestProfiles:
    def test_s3_is_always_on(self):
        assert S3Store().available_at == 0.0

    def test_elasticache_has_startup_delay(self):
        assert MemcachedStore().available_at > 100.0
        assert RedisStore().available_at > 100.0

    def test_redis_is_single_threaded(self):
        assert RedisStore().profile.concurrency == 1
        assert MemcachedStore().profile.concurrency > 1

    def test_unknown_cache_node_rejected(self):
        with pytest.raises(ConfigurationError):
            MemcachedStore(node="cache.z9.mega")

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageProfile(name="bad", latency_s=-1, bandwidth_bps=1, concurrency=1)
        with pytest.raises(ConfigurationError):
            StorageProfile(name="bad", latency_s=0, bandwidth_bps=1, concurrency=0)


class TestTiming:
    def test_put_duration_is_latency_plus_transfer(self):
        store = S3Store()
        start, end = store.schedule_op("put", 65 * MB, arrival=0.0)
        assert start == 0.0
        # 65 MB at 65 MB/s = 1 s, plus 80 ms latency.
        assert end == pytest.approx(1.08, rel=1e-3)

    def test_ops_queue_when_concurrency_exhausted(self):
        store = RedisStore()
        store.available_at = 0.0
        first = store.schedule_op("put", 63 * MB, arrival=0.0)
        second = store.schedule_op("put", 63 * MB, arrival=0.0)
        assert second[0] >= first[1]  # serialized behind the first

    def test_memcached_parallelism_beats_redis(self):
        mc = MemcachedStore()
        mc.available_at = 0.0
        rd = RedisStore()
        rd.available_at = 0.0
        mc_end = max(mc.schedule_op("put", 63 * MB, 0.0)[1] for _ in range(8))
        rd_end = max(rd.schedule_op("put", 63 * MB, 0.0)[1] for _ in range(8))
        assert mc_end < rd_end

    def test_ops_wait_for_startup(self):
        store = MemcachedStore()
        start, end = store.schedule_op("get", 1024, arrival=0.0)
        assert start >= store.available_at


class TestDynamoDB:
    def test_small_item_accepted(self):
        store = DynamoDBStore()
        store.schedule_op("put", 100 * 1024, arrival=0.0)

    def test_large_item_rejected(self):
        store = DynamoDBStore()
        with pytest.raises(ItemTooLargeError):
            store.schedule_op("put", 500 * 1024, arrival=0.0)

    def test_rcv1_model_rejected_via_serialization_overhead(self):
        # 47236 float64 = 377,888 raw bytes; framing pushes it past 400 KB.
        store = DynamoDBStore()
        with pytest.raises(ItemTooLargeError):
            store.schedule_op("put", 47_236 * 8, arrival=0.0)

    def test_higgs_model_fits(self):
        store = DynamoDBStore()
        store.schedule_op("put", 28 * 8, arrival=0.0)


class TestBilling:
    def test_s3_bills_requests(self):
        meter = CostMeter()
        store = S3Store(meter=meter)
        store.schedule_op("put", 1024, 0.0)
        store.schedule_op("get", 1024, 0.0)
        assert meter.counters["s3_put"] == 1
        assert meter.counters["s3_get"] == 1
        assert meter.total > 0

    def test_dynamodb_bills_by_request_units(self):
        meter = CostMeter()
        store = DynamoDBStore(meter=meter)
        store.schedule_op("put", 10 * 1024, 0.0)  # 10 write units
        ten_kb = meter.total
        meter2 = CostMeter()
        store2 = DynamoDBStore(meter=meter2)
        store2.schedule_op("put", 1024, 0.0)  # 1 write unit
        assert ten_kb > meter2.total

    def test_poll_billing(self):
        meter = CostMeter()
        store = S3Store(meter=meter)
        store.record_polls(5)
        assert meter.counters["s3_list"] == 5


class TestChannelFactory:
    @pytest.mark.parametrize("kind", ["s3", "memcached", "redis", "dynamodb"])
    def test_make_channel(self, kind):
        channel = make_channel(kind)
        assert channel.kind == kind

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            make_channel("floppy-disk")

    def test_elasticache_channels_carry_node(self):
        channel = make_channel("memcached", node="cache.m5.large")
        assert channel.node == "cache.m5.large"
        assert channel.startup_s > 0


class TestDataPlane:
    def test_roundtrip_through_engine(self):
        engine = Engine()
        store = VMDiskStore()
        payload = SizedPayload(np.arange(4), 32)

        def proc():
            yield Put(store, "x", payload)
            value = yield Get(store, "x")
            return value

        p = engine.spawn(proc(), "p")
        engine.run()
        assert np.array_equal(p.result.value, np.arange(4))

    def test_discard_is_silent_and_unbilled(self):
        meter = CostMeter()
        store = S3Store(meter=meter)
        store.seed_object("x", 1)
        store.discard("x")
        store.discard("x")  # idempotent
        assert len(store) == 0
        assert meter.total == 0

    def test_count_prefix(self):
        store = S3Store()
        store.seed_object("a/1", 1)
        store.seed_object("a/2", 2)
        store.seed_object("b/1", 3)
        assert store._count_prefix("a/") == 2
