"""Unit tests for utility helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.utils.rng import make_rng, spawn
from repro.utils.serialization import SizedPayload, payload_nbytes, unwrap
from repro.utils.stats import RunningMean, Timer


class TestRng:
    def test_int_seed_deterministic(self):
        a = make_rng(5).standard_normal(4)
        b = make_rng(5).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_children_independent(self):
        children = spawn(make_rng(1), 3)
        draws = [c.standard_normal(8) for c in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_deterministic(self):
        a = [c.standard_normal(2) for c in spawn(make_rng(9), 2)]
        b = [c.standard_normal(2) for c in spawn(make_rng(9), 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestPayloadSizing:
    def test_ndarray_size(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.float32)) == 40

    def test_sparse_size(self):
        X = sparse.random(10, 100, density=0.1, format="csr")
        nbytes = payload_nbytes(X)
        assert nbytes >= X.data.nbytes

    def test_sized_payload_overrides(self):
        payload = SizedPayload(np.zeros(2), 12 * 1024 * 1024)
        assert payload_nbytes(payload) == 12 * 1024 * 1024

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SizedPayload(None, -1)

    def test_container_sizes_sum(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 16 + 24
        assert payload_nbytes({"a": np.zeros(1)}) == payload_nbytes("a") + 8

    def test_scalar_and_bytes(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("héllo") == len("héllo".encode())
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(None) == 8

    def test_unknown_object_never_free(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) > 0

    def test_unwrap(self):
        arr = np.zeros(2)
        assert unwrap(SizedPayload(arr, 10)) is arr
        assert unwrap(arr) is arr


class TestRunningMean:
    def test_matches_numpy(self):
        values = [1.0, 2.0, 4.0, 8.0]
        rm = RunningMean()
        for v in values:
            rm.update(v)
        assert rm.mean == pytest.approx(np.mean(values))
        assert rm.variance == pytest.approx(np.var(values, ddof=1))

    def test_single_value(self):
        rm = RunningMean()
        rm.update(3.0)
        assert rm.mean == 3.0
        assert rm.variance == 0.0
        assert rm.std == 0.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
def test_property_running_mean_matches_numpy(values):
    rm = RunningMean()
    for v in values:
        rm.update(v)
    assert rm.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)


def test_timer_measures_something():
    with Timer() as t:
        sum(range(1000))
    assert t.elapsed >= 0.0
