"""Acceptance tests for the paper's headline claims (scaled down).

Each test pins one sentence of the paper to an executable check. These
are the reproduction's contract: if one fails, a paper-level conclusion
no longer emerges from the system.
"""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.core.driver import train


def _cfg(**overrides) -> TrainingConfig:
    base = dict(
        model="lr",
        dataset="higgs",
        algorithm="admm",
        system="lambdaml",
        workers=8,
        channel="memcached",
        batch_size=100_000,
        lr=0.05,
        loss_threshold=0.66,
        max_epochs=40,
        seed=20210620,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestSection42Algorithms:
    """'The widely adopted SGD algorithm is not one-size-fits-all.'"""

    def test_ga_sgd_needs_orders_of_magnitude_more_rounds(self):
        ga = train(_cfg(algorithm="ga_sgd", lr=0.3, max_epochs=3))
        admm = train(_cfg())
        assert ga.comm_rounds > 20 * admm.comm_rounds

    def test_admm_converges_within_few_rounds(self):
        result = train(_cfg())
        assert result.converged
        assert result.comm_rounds <= 6

    def test_ga_sgd_anti_scales_on_faas(self):
        """Fig 7a: GA-SGD gets slower with many workers (speedup < 1)."""
        small = train(_cfg(algorithm="ga_sgd", lr=0.3, workers=8, max_epochs=1,
                           loss_threshold=None))
        large = train(_cfg(algorithm="ga_sgd", lr=0.3, workers=64, max_epochs=1,
                           loss_threshold=None))
        assert large.duration_s > small.duration_s

    @pytest.mark.slow
    def test_admm_scales_on_faas(self):
        """Fig 7a: ADMM's speedup at large worker counts is positive.

        Per the paper's §4 protocol the channel is pre-started, so the
        measurement isolates compute/communication scaling.
        """
        small = train(_cfg(workers=8, max_epochs=10, loss_threshold=None,
                           channel_prestarted=True))
        large = train(_cfg(workers=64, max_epochs=10, loss_threshold=None,
                           channel_prestarted=True))
        assert large.duration_s < small.duration_s

    @pytest.mark.slow
    def test_ma_sgd_unstable_on_neural_model(self):
        """'The convergence of MA-SGD is unstable' (non-convex)."""
        ga = train(
            _cfg(model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                 workers=10, batch_size=128, batch_scope="per_worker",
                 partition_mode="label-skew", loss_threshold=None, max_epochs=3)
        )
        ma = train(
            _cfg(model="mobilenet", dataset="cifar10", algorithm="ma_sgd",
                 workers=10, batch_size=128, batch_scope="per_worker",
                 partition_mode="label-skew", loss_threshold=None, max_epochs=3)
        )
        assert ma.final_loss > ga.final_loss


class TestSection43Channels:
    """Channel tradeoffs of Table 1."""

    def test_memcached_start_up_dominates_short_jobs(self):
        s3 = train(_cfg(channel="s3"))
        memcached = train(_cfg(channel="memcached"))
        assert memcached.duration_s > s3.duration_s  # slowdown > 1
        assert memcached.cost_total > s3.cost_total  # relative cost > 1

    def test_dynamodb_close_to_s3_for_tiny_models(self):
        s3 = train(_cfg(channel="s3"))
        ddb = train(_cfg(channel="dynamodb"))
        assert ddb.duration_s == pytest.approx(s3.duration_s, rel=0.3)

    def test_dynamodb_cannot_hold_mobilenet(self):
        from repro.errors import ItemTooLargeError

        with pytest.raises(ItemTooLargeError):
            train(
                _cfg(model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                     channel="dynamodb", workers=10, batch_size=128,
                     batch_scope="per_worker", loss_threshold=None, max_epochs=1)
            )


class TestSection52EndToEnd:
    """'FaaS can be faster, but it is never significantly cheaper.'"""

    def test_lambdaml_faster_than_pytorch_on_communication_efficient(self):
        faas = train(_cfg())
        iaas = train(_cfg(system="pytorch"))
        assert faas.converged and iaas.converged
        assert faas.duration_s < iaas.duration_s

    def test_faas_not_significantly_cheaper(self):
        faas = train(_cfg())
        iaas = train(_cfg(system="pytorch"))
        # "Never significantly cheaper": FaaS stays within the same
        # cost magnitude (the paper shows it is usually *more* costly).
        assert faas.cost_total > 0.5 * iaas.cost_total

    def test_pytorch_wins_without_startup(self):
        """Fig 10: excluding start-up, IaaS is at least as fast."""
        faas = train(_cfg(loss_threshold=None, max_epochs=10, channel="s3",
                          algorithm="ma_sgd"))
        iaas = train(_cfg(system="pytorch", loss_threshold=None, max_epochs=10,
                          algorithm="ma_sgd"))
        assert iaas.duration_without_startup_s <= faas.duration_without_startup_s * 1.1

    @pytest.mark.slow
    def test_gpu_dominates_deep_models(self):
        """Fig 12: an IaaS GPU config beats FaaS on time AND cost for MN."""
        faas = train(
            _cfg(model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                 workers=10, batch_size=128, batch_scope="per_worker",
                 loss_threshold=0.2, max_epochs=8)
        )
        gpu = train(
            _cfg(model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                 system="pytorch", instance="g4dn.xlarge", workers=10,
                 batch_size=128, batch_scope="per_worker",
                 loss_threshold=0.2, max_epochs=8)
        )
        assert gpu.duration_s < faas.duration_s
        assert gpu.cost_total < faas.cost_total


class TestSection45Synchronization:
    """Fig 8: synchronous steady, asynchronous fast-but-unstable."""

    def test_bsp_converges_where_asp_struggles(self):
        bsp = train(_cfg(algorithm="ga_sgd", lr=0.3, channel="s3",
                         batch_size=1_000_000, max_epochs=16,
                         straggler_jitter=0.3))
        asp = train(_cfg(algorithm="ga_sgd", lr=0.3, channel="s3",
                         batch_size=1_000_000, protocol="asp", max_epochs=16,
                         straggler_jitter=0.3))
        assert bsp.converged
        # ASP either fails to converge or lands at a worse loss.
        assert (not asp.converged) or asp.final_loss >= bsp.final_loss - 1e-6

    def test_asp_cheaper_per_round(self):
        bsp = train(_cfg(algorithm="ga_sgd", lr=0.3, channel="s3",
                         batch_size=1_000_000, max_epochs=2, loss_threshold=None))
        asp = train(_cfg(algorithm="ga_sgd", lr=0.3, channel="s3",
                         batch_size=1_000_000, protocol="asp", max_epochs=2,
                         loss_threshold=None))
        assert asp.duration_s < bsp.duration_s
