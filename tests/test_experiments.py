"""Integration tests for the experiment modules (scaled-down settings).

These exercise the same code paths as the benchmark harness but with
small worker counts / epoch caps so the whole file runs in seconds.
The *shape* assertions here are the reproduction's acceptance criteria
(see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments import cost_sanity, table2_hybrid_rpc, table3_patterns
from repro.experiments import table6_constants
from repro.experiments.fig10_breakdown import run as run_breakdown
from repro.experiments.report import format_table, ratio
from repro.experiments.workloads import WORKLOADS, get_workload, scaled


class TestWorkloadRegistry:
    def test_all_known_workloads_resolve(self):
        for key in WORKLOADS:
            model, dataset = key.split("/")
            assert get_workload(model, dataset).key == key

    def test_unknown_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_workload("bert", "wikipedia")

    def test_scaled_override(self):
        w = scaled(get_workload("lr", "higgs"), workers=3)
        assert w.workers == 3
        assert get_workload("lr", "higgs").workers == 10

    def test_deep_models_use_per_worker_batches(self):
        assert get_workload("mobilenet", "cifar10").batch_scope == "per_worker"
        assert get_workload("resnet50", "cifar10").batch_scope == "per_worker"


class TestTable2:
    def test_rows_cover_all_configs(self):
        rows = table2_hybrid_rpc.run()
        assert len(rows) == 8

    def test_thrift_transfer_slower_than_grpc(self):
        for row in table2_hybrid_rpc.run():
            assert row.thrift_transfer_s > row.grpc_transfer_s

    def test_ten_lambdas_slower_than_one(self):
        rows = {(r.n_lambdas, r.lambda_memory_gb, r.ps_instance): r
                for r in table2_hybrid_rpc.run()}
        one = rows[(1, 3.0, "c5.4xlarge")]
        ten = rows[(10, 3.0, "c5.4xlarge")]
        assert ten.grpc_transfer_s > one.grpc_transfer_s
        assert ten.grpc_update_s > one.grpc_update_s

    def test_paper_magnitudes(self):
        rows = {(r.n_lambdas, r.lambda_memory_gb, r.ps_instance): r
                for r in table2_hybrid_rpc.run()}
        # 1x Lambda-3GB -> c5.4xlarge: paper measures 1.85 s.
        assert rows[(1, 3.0, "c5.4xlarge")].grpc_transfer_s == pytest.approx(1.85, rel=0.2)
        # 1x Lambda-3GB -> t2.2xlarge: paper measures 2.62 s.
        assert rows[(1, 3.0, "t2.2xlarge")].grpc_transfer_s == pytest.approx(2.62, rel=0.2)

    def test_report_renders(self):
        text = table2_hybrid_rpc.format_report(table2_hybrid_rpc.run())
        assert "Table 2" in text


class TestTable3:
    def test_scatter_reduce_wins_on_resnet(self):
        rows = {r.label: r for r in table3_patterns.run()}
        rn = rows["ResNet,Cifar10,W=10"]
        assert rn.allreduce_s / rn.scatter_reduce_s > 1.5

    def test_allreduce_fine_for_lr(self):
        rows = {r.label: r for r in table3_patterns.run()}
        lr = rows["LR,Higgs,W=50"]
        assert lr.scatter_reduce_s >= lr.allreduce_s * 0.8

    def test_model_sizes_match_table(self):
        rows = {r.label: r for r in table3_patterns.run()}
        assert rows["LR,Higgs,W=50"].model_bytes == 224
        assert rows["MobileNet,Cifar10,W=10"].model_bytes == 12 * 1024 * 1024
        assert rows["ResNet,Cifar10,W=10"].model_bytes == 89 * 1024 * 1024


class TestTable6:
    def test_measured_constants_match_paper(self):
        for row in table6_constants.run():
            assert row.measured_value == pytest.approx(row.paper_value, rel=0.25), row


class TestFig10:
    def test_breakdown_shape(self):
        rows = {r.system: r for r in run_breakdown(epochs=3.0, workers=4)}
        assert rows["lambdaml"].startup_s < 5
        assert rows["pytorch"].startup_s > 100
        assert rows["angel"].startup_s > rows["pytorch"].startup_s
        assert rows["angel"].load_s > rows["pytorch"].load_s * 2
        assert rows["angel"].compute_s > rows["pytorch"].compute_s
        # LambdaML wins end-to-end but not without startup.
        assert rows["lambdaml"].total_s < rows["pytorch"].total_s
        assert (
            rows["lambdaml"].total_without_startup_s
            >= rows["pytorch"].total_without_startup_s * 0.8
        )


class TestCostSanity:
    @pytest.mark.slow
    def test_distributed_beats_single_machine(self):
        row = cost_sanity.run_case("lr", "higgs", workers=10, max_epochs=20)
        assert row.faas_speedup > 2.0
        assert row.iaas_speedup > 1.0


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [None, True]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "N/A" in text
        assert "yes" in text

    def test_ratio_handles_none_and_zero(self):
        assert ratio(None, 2.0) is None
        assert ratio(1.0, None) is None
        assert ratio(1.0, 0) is None
        assert ratio(4.0, 2.0) == 2.0
