"""The Study registry: discovery, memoized grids, the CLI catalog.

ISSUE 5 acceptance: every experiment module is a registered study
(>= 14 names beyond smoke), each grid study's points build valid,
hash-unique configs, grid expansion is memoized per context, and
``repro.cli sweep --list`` prints the whole catalog with grid/
fingerprint accounting.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.sweep.grid import SweepPoint
from repro.sweep.study import (
    Study,
    StudyContext,
    all_studies,
    get_study,
    register,
    study,
)

# The full catalog an ISSUE-5 registry must expose.
EXPECTED_STUDIES = {
    "cost_sanity", "datasets", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "figR", "figS", "multitenancy",
    "multitenancy_analytical", "smoke",
    "table1", "table2", "table3", "table5", "table6",
}


class TestRegistry:
    def test_every_experiment_module_is_registered(self):
        names = set(all_studies())
        assert EXPECTED_STUDIES <= names
        assert len(names - {"smoke"}) >= 14

    def test_unknown_study_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown study"):
            get_study("fig99")

    def test_duplicate_registration_rejected(self):
        get_study("smoke")  # force discovery first
        with pytest.raises(ConfigurationError, match="already registered"):

            @study("smoke")
            class Duplicate:
                """duplicate"""

                points = staticmethod(lambda ctx: [])
                aggregate = staticmethod(lambda a: a)
                format_report = staticmethod(str)

    def test_grid_studies_build_valid_unique_configs(self):
        for name, entry in all_studies().items():
            points = entry.points(max_epochs=1.0)
            if entry.kind == "direct":
                assert points == []
                continue
            assert points, name
            hashes = set()
            for point in points:
                assert point.experiment == name
                assert isinstance(point.config(), TrainingConfig)
                hashes.add(point.hash())
            assert len(hashes) == len(points), f"{name}: colliding configs"

    def test_direct_studies_aggregate_without_artifacts(self):
        # The cheap analytical ones; table3/table6/datasets run real
        # engine probes and are covered by test_experiments.py.
        for name in ("fig14", "fig15", "table2", "multitenancy_analytical"):
            entry = get_study(name)
            result = entry.aggregate([])
            assert result, name
            assert entry.format_report(result), name


class TestMemoizedExpansion:
    def make_study(self, calls):
        def points(ctx):
            calls.append(ctx)
            return [
                SweepPoint(
                    "memo", "p",
                    config_kwargs=dict(
                        model="lr", dataset="higgs", algorithm="admm",
                        max_epochs=ctx.max_epochs or 1.0,
                    ),
                )
            ]

        return Study("memo", "memoization probe", points,
                     aggregate=lambda a: a, format_report=str)

    def test_same_context_expands_once(self):
        calls = []
        entry = self.make_study(calls)
        first = entry.points(max_epochs=1.0)
        second = entry.points(max_epochs=1.0)
        assert len(calls) == 1  # --dry-run + run: one expansion
        assert first == second
        assert first is not second  # callers get their own list
        assert first[0] is second[0]  # over shared frozen points

    def test_context_changes_invalidate(self):
        calls = []
        entry = self.make_study(calls)
        entry.points(max_epochs=1.0)
        entry.points(max_epochs=2.0)
        entry.points(seed=7)
        assert len(calls) == 3

    def test_ctx_object_and_kwargs_share_the_cache(self):
        calls = []
        entry = self.make_study(calls)
        entry.points(max_epochs=1.0, seed=3)
        entry.points(ctx=StudyContext(max_epochs=1.0, seed=3))
        assert len(calls) == 1


class TestStudyDecorator:
    def test_description_defaults_to_docstring(self):
        probe = []

        def catcher(entry):
            probe.append(entry)
            return entry

        import repro.sweep.study as study_module

        original = study_module.register
        study_module.register = catcher
        try:

            @study("docstring-probe")
            class Probe:
                """first line wins

                not this one.
                """

                points = staticmethod(lambda ctx: [])
                aggregate = staticmethod(lambda a: a)
                format_report = staticmethod(str)

        finally:
            study_module.register = original
        assert probe[0].description == "first line wins"

    def test_grid_study_requires_points(self):
        with pytest.raises(ConfigurationError, match="must declare points"):

            @study("pointless", description="no grid")
            class Pointless:
                aggregate = staticmethod(lambda a: a)
                format_report = staticmethod(str)

    def test_direct_study_defaults_to_empty_grid(self):
        probe = []
        import repro.sweep.study as study_module

        def catcher(entry):
            probe.append(entry)
            return entry

        original = study_module.register
        study_module.register = catcher
        try:

            @study("directless", kind="direct", description="computed")
            class Directless:
                aggregate = staticmethod(lambda a: "result")
                format_report = staticmethod(str)

        finally:
            study_module.register = original
        assert probe[0].points(max_epochs=1.0) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown study kind"):
            Study("x", "d", lambda ctx: [], lambda a: a, str, kind="quantum")

    def test_register_is_importable_and_guarded(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register(get_study("smoke"))


class TestCliCatalog:
    def test_sweep_list_prints_every_study(self, capsys):
        assert main(["sweep", "--list", "--max-epochs", "1"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_STUDIES:
            assert name in out, name
        # the --dry-run accounting: grid sizes + unique fingerprints
        header = out.splitlines()[0]
        assert "points" in header and "stat-fp" in header
        smoke_line = next(line for line in out.splitlines() if line.startswith("smoke"))
        assert " 6 " in smoke_line and " 1 " in smoke_line

    def test_sweep_without_experiment_or_list_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "--list" in capsys.readouterr().err

    def test_direct_study_through_the_sweep_cli(self, tmp_path, capsys):
        # A "direct" study rides the same CLI: zero points, full report.
        out = tmp_path / "artifacts"
        assert main(["sweep", "--experiment", "table2", "--out", str(out),
                     "--resume", "--substrate", "auto", "--jobs", "2"]) == 0
        stdout = capsys.readouterr().out
        assert "Table 2" in stdout
        assert "0 point(s) run" in stdout

    def test_multitenancy_analytical_through_the_sweep_cli(self, capsys):
        # The closed-form study stays a zero-point direct study; its
        # simulated sibling ("multitenancy") is an ordinary grid study
        # covered by test_grid_studies_build_valid_unique_configs.
        assert main(["sweep", "--experiment", "multitenancy_analytical",
                     "--no-report"]) == 0
        assert "0 point(s) run" in capsys.readouterr().out
