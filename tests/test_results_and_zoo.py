"""Unit tests for RunResult helpers and the model zoo profiles."""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.core.results import LossPoint, RunResult
from repro.errors import ConfigurationError
from repro.models.kmeans import KMeansModel
from repro.models.linear import LinearSVM, LogisticRegression
from repro.models.nn import MLPClassifier
from repro.models.zoo import build_model, get_model_info
from repro.simulation.tracing import TimeBreakdown

MB = 1024 * 1024


def _result(history=None, breakdown=None) -> RunResult:
    config = TrainingConfig(
        model="lr", dataset="higgs", algorithm="ma_sgd", loss_threshold=0.66
    )
    b = TimeBreakdown()
    for category, seconds in (breakdown or {"startup": 2.0, "compute": 10.0}).items():
        b.add(category, seconds)
    return RunResult(
        config=config,
        converged=True,
        final_loss=0.65,
        duration_s=20.0,
        cost_total=0.1,
        cost_breakdown={"lambda": 0.1},
        epochs=5.0,
        comm_rounds=5,
        history=history or [],
        breakdown=b,
    )


class TestRunResult:
    def test_duration_without_startup(self):
        result = _result()
        assert result.startup_s == 2.0
        assert result.duration_without_startup_s == 18.0

    def test_loss_curve_sorted(self):
        history = [
            LossPoint(3.0, 1.0, 0.5, 0),
            LossPoint(1.0, 0.0, 0.7, 0),
            LossPoint(2.0, 0.5, 0.6, 1),
        ]
        curve = _result(history=history).loss_curve()
        assert [t for t, _ in curve] == [1.0, 2.0, 3.0]

    def test_time_to_loss(self):
        history = [
            LossPoint(1.0, 0.0, 0.7, 0),
            LossPoint(2.0, 1.0, 0.6, 0),
            LossPoint(3.0, 2.0, 0.5, 0),
        ]
        result = _result(history=history)
        assert result.time_to_loss(0.6) == 2.0
        assert result.time_to_loss(0.1) is None

    def test_summary_mentions_state(self):
        assert "converged" in _result().summary()


class TestTimeBreakdown:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("compute", -1.0)

    def test_communication_aggregate(self):
        b = TimeBreakdown()
        b.add("comm", 1.0)
        b.add("wait", 2.0)
        b.add("merge", 3.0)
        assert b.communication == 6.0

    def test_max_per_category(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("compute", 5.0)
        b.add("compute", 7.0)
        b.add("wait", 1.0)
        merged = TimeBreakdown.max_per_category([a, b])
        assert merged.get("compute") == 7.0
        assert merged.get("wait") == 1.0

    def test_merged_with_sums(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("comm", 1.0)
        b.add("comm", 2.0)
        assert a.merged_with(b).get("comm") == 3.0


class TestModelZoo:
    def test_lr_higgs_is_224_bytes(self):
        assert get_model_info("lr", "higgs").param_bytes == 224

    def test_mobilenet_is_12mb(self):
        assert get_model_info("mobilenet", "cifar10").param_bytes == 12 * MB

    def test_resnet_is_89mb(self):
        assert get_model_info("resnet50", "cifar10").param_bytes == 89 * MB

    def test_factories_produce_right_types(self):
        assert isinstance(build_model("lr", "higgs")[0], LogisticRegression)
        assert isinstance(build_model("svm", "rcv1")[0], LinearSVM)
        assert isinstance(build_model("kmeans", "higgs", k=5)[0], KMeansModel)
        assert isinstance(build_model("mobilenet", "cifar10")[0], MLPClassifier)

    def test_kmeans_size_scales_with_k(self):
        small = get_model_info("kmeans", "higgs", k=10)
        large = get_model_info("kmeans", "higgs", k=1000)
        assert large.param_bytes == 100 * small.param_bytes

    def test_convexity_flags(self):
        assert get_model_info("lr", "higgs").convex
        assert get_model_info("svm", "higgs").convex
        assert not get_model_info("mobilenet", "cifar10").convex
        assert not get_model_info("kmeans", "higgs").convex  # EM, not ADMM

    def test_gpu_speedups_only_for_deep_models(self):
        assert get_model_info("mobilenet", "cifar10").compute.gpu_speedup_t4 > 10
        assert get_model_info("lr", "higgs").compute.gpu_speedup_t4 == 1.0

    def test_resnet_memory_envelope(self):
        # Batch 32 fits a 3 GB function, batch 64 does not (§5.2).
        info = get_model_info("resnet50", "cifar10")
        model_footprint = 4 * info.param_bytes
        fits_32 = model_footprint + 32 * info.activation_bytes_per_instance
        fits_64 = model_footprint + 64 * info.activation_bytes_per_instance
        limit = 3 * 1024**3
        assert fits_32 < limit
        assert fits_64 > limit * 0.9  # at the wall once data is added

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            get_model_info("transformer", "higgs")

    def test_deep_models_only_on_cifar(self):
        with pytest.raises(ConfigurationError):
            get_model_info("mobilenet", "higgs")

    def test_compute_calibration_lr_higgs(self):
        # Figure 10: ~8 s/epoch for 1.1 M rows on the reference worker.
        info = get_model_info("lr", "higgs")
        epoch_seconds = 1_100_000 * info.compute.per_instance_s
        assert epoch_seconds == pytest.approx(8.0, rel=0.2)
