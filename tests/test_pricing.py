"""Unit tests for the price catalog and cost meter."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.pricing.catalog import DEFAULT_CATALOG
from repro.pricing.meter import CostMeter


class TestCatalog:
    def test_paper_anchor_price(self):
        # The paper quotes cache.t3.small at $0.034/hour.
        assert DEFAULT_CATALOG.elasticache_price("cache.t3.small") == 0.034

    def test_unknown_instance_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CATALOG.ec2_price("quantum.9000xl")

    def test_unknown_cache_node_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CATALOG.elasticache_price("cache.z1.nano")

    def test_gpu_more_expensive_than_cpu(self):
        assert DEFAULT_CATALOG.ec2_price("g3s.xlarge") > DEFAULT_CATALOG.ec2_price(
            "t2.medium"
        )


class TestMeter:
    def test_lambda_billing_scales_with_memory_and_time(self):
        a, b = CostMeter(), CostMeter()
        a.bill_lambda(3.0, 100.0)
        b.bill_lambda(1.0, 100.0)
        assert a.total == pytest.approx(3 * b.total)

    def test_lambda_invocation_charge(self):
        m = CostMeter()
        m.bill_lambda(0.0, 0.0, invocations=1_000_000)
        assert m.total == pytest.approx(0.2)

    def test_vm_billing_by_the_hour(self):
        m = CostMeter()
        m.bill_vm("t2.medium", 3600.0, count=2)
        assert m.total == pytest.approx(2 * 0.0464)

    def test_elasticache_billing(self):
        m = CostMeter()
        m.bill_elasticache("cache.t3.small", 1800.0)
        assert m.total == pytest.approx(0.017)

    def test_negative_charge_rejected(self):
        m = CostMeter()
        with pytest.raises(ValueError):
            m.add("x", -1.0)

    def test_breakdown_by_component(self):
        m = CostMeter()
        m.bill_lambda(3.0, 10.0)
        m.bill_vm("t2.medium", 10.0)
        breakdown = m.breakdown()
        assert set(breakdown) == {"lambda", "ec2"}
        assert m.total == pytest.approx(sum(breakdown.values()))

    def test_dynamodb_write_unit_rounding(self):
        m = CostMeter()
        m.bill_dynamodb_request("put", 1)  # still one full write unit
        assert m.total == pytest.approx(1.25e-6)
