"""Unit tests for the price catalog and cost meter."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.pricing.catalog import DEFAULT_CATALOG
from repro.pricing.meter import CostMeter


class TestCatalog:
    def test_paper_anchor_price(self):
        # The paper quotes cache.t3.small at $0.034/hour.
        assert DEFAULT_CATALOG.elasticache_price("cache.t3.small") == 0.034

    def test_unknown_instance_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CATALOG.ec2_price("quantum.9000xl")

    def test_unknown_cache_node_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CATALOG.elasticache_price("cache.z1.nano")

    def test_gpu_more_expensive_than_cpu(self):
        assert DEFAULT_CATALOG.ec2_price("g3s.xlarge") > DEFAULT_CATALOG.ec2_price(
            "t2.medium"
        )


class TestMeter:
    def test_lambda_billing_scales_with_memory_and_time(self):
        a, b = CostMeter(), CostMeter()
        a.bill_lambda(3.0, 100.0)
        b.bill_lambda(1.0, 100.0)
        assert a.total == pytest.approx(3 * b.total)

    def test_lambda_invocation_charge(self):
        m = CostMeter()
        m.bill_lambda(0.0, 0.0, invocations=1_000_000)
        assert m.total == pytest.approx(0.2)

    def test_vm_billing_by_the_hour(self):
        m = CostMeter()
        m.bill_vm("t2.medium", 3600.0, count=2)
        assert m.total == pytest.approx(2 * 0.0464)

    def test_elasticache_billing(self):
        m = CostMeter()
        m.bill_elasticache("cache.t3.small", 1800.0)
        assert m.total == pytest.approx(0.017)

    def test_negative_charge_rejected(self):
        m = CostMeter()
        with pytest.raises(ValueError):
            m.add("x", -1.0)

    def test_breakdown_by_component(self):
        m = CostMeter()
        m.bill_lambda(3.0, 10.0)
        m.bill_vm("t2.medium", 10.0)
        breakdown = m.breakdown()
        assert set(breakdown) == {"lambda", "ec2"}
        assert m.total == pytest.approx(sum(breakdown.values()))

    def test_dynamodb_write_unit_rounding(self):
        m = CostMeter()
        m.bill_dynamodb_request("put", 1)  # still one full write unit
        assert m.total == pytest.approx(1.25e-6)


class TestServingPlatforms:
    """Satellite: the GPU-IaaS pricing profile and its cost arithmetic."""

    def test_catalog_has_gpu_iaas_rate(self):
        # g4dn.xlarge (one T4) at the on-demand $0.526/hour anchor.
        assert DEFAULT_CATALOG.ec2_price("g4dn.xlarge") == 0.526

    def test_hourly_dollars_iaas_is_instance_rate(self):
        from repro.pricing import SERVING_PLATFORMS

        profile = SERVING_PLATFORMS["gpu_iaas"]
        assert profile.hourly_dollars(DEFAULT_CATALOG) == pytest.approx(0.526)

    def test_hourly_dollars_faas_is_gb_second_ceiling(self):
        from repro.pricing import SERVING_PLATFORMS
        from repro.pricing.catalog import LAMBDA_PER_GB_SECOND

        profile = SERVING_PLATFORMS["faas"]
        # A fully-utilized 3 GB function for one hour.
        expected = 3.0 * 3600.0 * LAMBDA_PER_GB_SECOND
        assert profile.hourly_dollars(
            DEFAULT_CATALOG, memory_gb=3.0
        ) == pytest.approx(expected)
        # The FaaS hourly ceiling beats the GPU VM only below 3 GB x 1 h.
        assert expected == pytest.approx(0.18000036)

    def test_inference_speedup_selects_gpu_family(self):
        import dataclasses

        from repro.models.zoo import get_model_info
        from repro.pricing import SERVING_PLATFORMS, inference_speedup

        compute = get_model_info("mobilenet", "cifar10").compute
        gpu = SERVING_PLATFORMS["gpu_iaas"]
        # g4dn carries a T4 -> the 27x ratio; g3s carries an M60 -> 20x.
        assert inference_speedup(gpu, compute) == compute.gpu_speedup_t4 == 27.0
        m60 = dataclasses.replace(gpu, instance="g3s.xlarge")
        assert inference_speedup(m60, compute) == compute.gpu_speedup_m60 == 20.0

    def test_inference_speedup_cpu_and_faas(self):
        from repro.models.zoo import get_model_info
        from repro.pricing import SERVING_PLATFORMS, inference_speedup

        compute = get_model_info("mobilenet", "cifar10").compute
        assert inference_speedup(SERVING_PLATFORMS["iaas"], compute) == 1.2
        assert inference_speedup(SERVING_PLATFORMS["faas"], compute) == 1.0

    def test_gpu_fallback_for_models_without_gpu_ratio(self):
        from repro.models.zoo import get_model_info
        from repro.pricing import SERVING_PLATFORMS, inference_speedup

        # LR has no calibrated GPU ratio: the GPU VM still serves at
        # least as fast as its own CPU cores.
        compute = get_model_info("lr", "higgs").compute
        speedup = inference_speedup(SERVING_PLATFORMS["gpu_iaas"], compute)
        assert speedup == SERVING_PLATFORMS["gpu_iaas"].cpu_multiplier

    def test_get_platform_overrides_and_errors(self):
        from repro.pricing import get_platform

        custom = get_platform("iaas", instance="m5.2xlarge")
        assert custom.instance == "m5.2xlarge"
        gpu = get_platform("gpu_iaas", gpu_instance="g3s.xlarge")
        assert gpu.instance == "g3s.xlarge"
        with pytest.raises(ConfigurationError):
            get_platform("bare_metal")

    def test_gpu_hour_vs_serve_cost_arithmetic(self):
        # One VM-hour of g4dn.xlarge through the meter matches the
        # catalog rate exactly — the serving tier's $/1M axis rests on
        # this arithmetic.
        m = CostMeter()
        m.bill_vm("g4dn.xlarge", 3600.0)
        assert m.total == pytest.approx(0.526)
