"""Tests for the command-line interface."""

from __future__ import annotations

import argparse
import dataclasses
import json

import pytest

from repro.cli import add_config_flags, build_parser, config_from_args, main
from repro.core.config import TrainingConfig


def train_subparser() -> argparse.ArgumentParser:
    parser = build_parser()
    subparsers = parser._subparsers._group_actions[0]
    return subparsers.choices["train"]


class TestParser:
    def test_train_parses_defaults(self):
        args = build_parser().parse_args(
            ["train", "--model", "lr", "--dataset", "higgs"]
        )
        assert args.command == "train"
        assert args.algorithm == "ma_sgd"
        assert args.workers == 10
        # Derived flags inherit the *config* defaults — the old
        # hand-written parser had drifted (lr 0.05, max_epochs 40).
        assert args.lr == TrainingConfig.__dataclass_fields__["lr"].default
        assert args.max_epochs == 60.0

    def test_train_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "bert", "--dataset", "higgs"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


# Like serve's orchestration knobs: observability of the run, not part
# of the workload's identity, so hand-written rather than a config field.
TRAIN_ORCHESTRATION_FLAGS = {"profile"}


class TestTrainFlagParity:
    """`train` flags are generated from TrainingConfig — pin the bijection."""

    def config_fields(self) -> dict[str, dataclasses.Field]:
        return {
            f.name: f for f in dataclasses.fields(TrainingConfig) if f.init
        }

    def flag_actions(self) -> dict[str, argparse.Action]:
        return {
            action.dest: action
            for action in train_subparser()._actions
            if action.dest != "help"
            and action.dest not in TRAIN_ORCHESTRATION_FLAGS
        }

    def test_orchestration_flags_present_and_disjoint(self):
        dests = {a.dest for a in train_subparser()._actions}
        assert TRAIN_ORCHESTRATION_FLAGS <= dests
        assert not (TRAIN_ORCHESTRATION_FLAGS & self.config_fields().keys())

    def test_field_flag_bijection(self):
        # Every init field has exactly one flag, and no flag exists
        # without a field — a new config field cannot silently miss the
        # CLI, and a CLI-only knob cannot silently miss the config.
        assert self.flag_actions().keys() == self.config_fields().keys()

    def test_flag_names_types_defaults_match_fields(self):
        actions = self.flag_actions()
        for name, field in self.config_fields().items():
            action = actions[name]
            flag = "--" + name.replace("_", "-")
            assert flag in action.option_strings, name
            kind = str(field.type).split("|")[0].strip()
            if kind == "bool":
                assert isinstance(action, argparse.BooleanOptionalAction), name
                assert action.default == field.default
            elif field.default is dataclasses.MISSING:
                assert action.required, name
            else:
                assert action.default == field.default, name
                assert action.type is {"int": int, "float": float, "str": str}[kind]

    def test_metadata_choices_reach_argparse(self):
        actions = self.flag_actions()
        for name, field in self.config_fields().items():
            choices = field.metadata.get("choices")
            if choices is not None:
                assert actions[name].choices == list(choices), name

    def test_config_from_args_round_trips_every_field(self):
        parser = argparse.ArgumentParser()
        add_config_flags(parser)
        args = parser.parse_args(
            ["--model", "lr", "--dataset", "higgs", "--algorithm", "admm",
             "--mttf-s", "120", "--channel-prestarted", "--data-scale", "5000"]
        )
        config = config_from_args(args)
        assert config == TrainingConfig(
            model="lr", dataset="higgs", algorithm="admm",
            mttf_s=120.0, channel_prestarted=True, data_scale=5000,
        )

    def test_optional_fields_keep_none_defaults(self):
        parser = argparse.ArgumentParser()
        add_config_flags(parser)
        args = parser.parse_args(["--model", "lr", "--dataset", "higgs"])
        assert args.loss_threshold is None
        assert args.mttf_s is None
        assert args.data_scale is None


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "lr/higgs" in out
        assert "mobilenet/cifar10" in out

    def test_train_runs_and_reports(self, capsys):
        code = main(
            [
                "train", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "admm", "--workers", "4",
                "--loss-threshold", "0.66", "--max-epochs", "40",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "cost breakdown" in out

    def test_train_exit_code_on_non_convergence(self, capsys):
        code = main(
            [
                "train", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "ma_sgd", "--workers", "4",
                "--loss-threshold", "0.01", "--max-epochs", "2",
            ]
        )
        assert code == 1

    def test_train_profile_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "prof"
        code = main(
            [
                "train", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "admm", "--workers", "4",
                "--loss-threshold", "0.66", "--max-epochs", "40",
                "--profile", str(out),
            ]
        )
        assert code == 0
        assert (out / "train_profile.pstats").exists()
        table = (out / "train_profile.txt").read_text()
        assert "cumulative" in table  # pstats header made it out
        stats = json.loads((out / "train_engine_stats.json").read_text())
        assert len(stats["per_engine"]) == 1
        combined = stats["combined"]
        assert combined["events"] > 0
        assert combined["batches"] > 0
        assert combined["events"] >= combined["batches"]
        assert combined["top_callsites"]  # [qualname, count] pairs
        name, count = combined["top_callsites"][0]
        assert isinstance(name, str) and count > 0

    def test_estimate_command(self, capsys):
        code = main(
            [
                "estimate", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "ma_sgd", "--lr", "0.05", "--threshold", "0.67",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "epochs" in out


def serve_subparser() -> argparse.ArgumentParser:
    parser = build_parser()
    subparsers = parser._subparsers._group_actions[0]
    return subparsers.choices["serve"]


# Orchestration knobs (where reports/baselines live, parallelism,
# resume, substrate policy, output format) are deliberately NOT part of
# the workload's identity, so they are hand-written flags, not
# ServiceConfig fields.
SERVE_ORCHESTRATION_FLAGS = {"out", "jobs", "resume", "substrate", "json"}


class TestServeFlagParity:
    """`serve` flags are generated from ServiceConfig — pin the bijection."""

    def config_fields(self) -> dict[str, dataclasses.Field]:
        from repro.service.config import ServiceConfig

        return {
            f.name: f for f in dataclasses.fields(ServiceConfig) if f.init
        }

    def flag_actions(self) -> dict[str, argparse.Action]:
        return {
            action.dest: action
            for action in serve_subparser()._actions
            if action.dest != "help"
            and action.dest not in SERVE_ORCHESTRATION_FLAGS
        }

    def test_field_flag_bijection(self):
        assert self.flag_actions().keys() == self.config_fields().keys()

    def test_flag_names_types_defaults_match_fields(self):
        actions = self.flag_actions()
        for name, field in self.config_fields().items():
            action = actions[name]
            flag = "--" + name.replace("_", "-")
            assert flag in action.option_strings, name
            kind = str(field.type).split("|")[0].strip()
            if kind == "bool":
                assert isinstance(action, argparse.BooleanOptionalAction), name
                assert action.default == field.default
            elif field.default is dataclasses.MISSING:
                assert action.required, name
            else:
                assert action.default == field.default, name
                assert action.type is {"int": int, "float": float, "str": str}[kind]

    def test_metadata_choices_reach_argparse(self):
        actions = self.flag_actions()
        for name, field in self.config_fields().items():
            choices = field.metadata.get("choices")
            if choices is not None:
                assert actions[name].choices == list(choices), name

    def test_orchestration_flags_present_and_disjoint(self):
        dests = {a.dest for a in serve_subparser()._actions}
        assert SERVE_ORCHESTRATION_FLAGS <= dests
        assert not (SERVE_ORCHESTRATION_FLAGS & self.config_fields().keys())

    def test_serve_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--scheduler", "lifo"])


def infer_subparser() -> argparse.ArgumentParser:
    parser = build_parser()
    subparsers = parser._subparsers._group_actions[0]
    return subparsers.choices["infer"]


# Same split as serve: pipeline identity lives in ServingConfig,
# orchestration knobs are hand-written flags.
INFER_ORCHESTRATION_FLAGS = {"out", "jobs", "resume", "substrate", "json"}


class TestInferFlagParity:
    """`infer` flags are generated from ServingConfig — pin the bijection."""

    def config_fields(self) -> dict[str, dataclasses.Field]:
        from repro.serving.config import ServingConfig

        return {
            f.name: f for f in dataclasses.fields(ServingConfig) if f.init
        }

    def flag_actions(self) -> dict[str, argparse.Action]:
        return {
            action.dest: action
            for action in infer_subparser()._actions
            if action.dest != "help"
            and action.dest not in INFER_ORCHESTRATION_FLAGS
        }

    def test_field_flag_bijection(self):
        assert self.flag_actions().keys() == self.config_fields().keys()

    def test_flag_names_types_defaults_match_fields(self):
        actions = self.flag_actions()
        for name, field in self.config_fields().items():
            action = actions[name]
            flag = "--" + name.replace("_", "-")
            assert flag in action.option_strings, name
            kind = str(field.type).split("|")[0].strip()
            if kind == "bool":
                assert isinstance(action, argparse.BooleanOptionalAction), name
                assert action.default == field.default
            elif field.default is dataclasses.MISSING:
                assert action.required, name
            else:
                assert action.default == field.default, name
                assert action.type is {"int": int, "float": float, "str": str}[kind]

    def test_metadata_choices_reach_argparse(self):
        actions = self.flag_actions()
        for name, field in self.config_fields().items():
            choices = field.metadata.get("choices")
            if choices is not None:
                assert actions[name].choices == list(choices), name

    def test_orchestration_flags_present_and_disjoint(self):
        dests = {a.dest for a in infer_subparser()._actions}
        assert INFER_ORCHESTRATION_FLAGS <= dests
        assert not (INFER_ORCHESTRATION_FLAGS & self.config_fields().keys())

    def test_infer_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--platform", "mainframe"])

    def test_infer_rejects_unknown_traffic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--traffic", "square_wave"])
