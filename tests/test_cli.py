"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_train_parses_defaults(self):
        args = build_parser().parse_args(
            ["train", "--model", "lr", "--dataset", "higgs"]
        )
        assert args.command == "train"
        assert args.algorithm == "ma_sgd"
        assert args.workers == 10

    def test_train_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "bert", "--dataset", "higgs"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "lr/higgs" in out
        assert "mobilenet/cifar10" in out

    def test_train_runs_and_reports(self, capsys):
        code = main(
            [
                "train", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "admm", "--workers", "4",
                "--loss-threshold", "0.66", "--max-epochs", "40",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "cost breakdown" in out

    def test_train_exit_code_on_non_convergence(self, capsys):
        code = main(
            [
                "train", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "ma_sgd", "--workers", "4",
                "--loss-threshold", "0.01", "--max-epochs", "2",
            ]
        )
        assert code == 1

    def test_estimate_command(self, capsys):
        code = main(
            [
                "estimate", "--model", "lr", "--dataset", "higgs",
                "--algorithm", "ma_sgd", "--lr", "0.05", "--threshold", "0.67",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "epochs" in out
