"""Integration tests: end-to-end training through the driver."""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.errors import ConfigurationError, OutOfMemoryError


def _config(**overrides) -> TrainingConfig:
    base = dict(
        model="lr",
        dataset="higgs",
        algorithm="ma_sgd",
        system="lambdaml",
        workers=4,
        channel="s3",
        batch_size=10_000,
        lr=0.05,
        loss_threshold=0.68,
        max_epochs=10,
        seed=13,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestConfigValidation:
    def test_admm_rejected_for_nonconvex(self):
        with pytest.raises(ConfigurationError):
            _config(model="mobilenet", dataset="cifar10", algorithm="admm")

    def test_em_only_for_kmeans(self):
        with pytest.raises(ConfigurationError):
            _config(algorithm="em")
        with pytest.raises(ConfigurationError):
            _config(model="kmeans", algorithm="ga_sgd")

    def test_asp_is_faas_only(self):
        with pytest.raises(ConfigurationError):
            _config(system="pytorch", protocol="asp")

    def test_unknown_system(self):
        with pytest.raises(ConfigurationError):
            _config(system="spark")

    def test_platform_derived(self):
        assert _config().platform == "faas"
        assert _config(system="pytorch").platform == "iaas"
        assert _config(system="hybridps", algorithm="ga_sgd").platform == "hybrid"


class TestFaaSTraining:
    def test_lambdaml_converges_lr_higgs(self):
        result = train(_config())
        assert result.converged
        assert result.final_loss <= 0.68
        assert result.duration_s > 0
        assert result.cost_total > 0

    def test_breakdown_phases_present(self):
        result = train(_config(max_epochs=3, loss_threshold=None))
        for phase in ("startup", "load", "compute"):
            assert result.breakdown.get(phase) > 0, phase
        assert result.breakdown.communication > 0

    def test_deterministic_given_seed(self):
        a = train(_config())
        b = train(_config())
        assert a.duration_s == b.duration_s
        assert a.final_loss == b.final_loss
        assert a.cost_total == b.cost_total

    def test_seed_changes_trajectory(self):
        a = train(_config(seed=13))
        b = train(_config(seed=14))
        assert a.final_loss != b.final_loss

    def test_loss_history_recorded(self):
        result = train(_config(max_epochs=4, loss_threshold=None))
        assert len(result.history) >= 4 * 4  # per worker per epoch
        times = [p.time_s for p in result.history]
        assert times == sorted(times)

    def test_scatterreduce_pattern_trains(self):
        result = train(_config(pattern="scatterreduce"))
        assert result.converged

    def test_memcached_channel_adds_startup_wait(self):
        s3 = train(_config(max_epochs=2, loss_threshold=None))
        mc = train(_config(max_epochs=2, loss_threshold=None, channel="memcached"))
        # The job is gated on the ~140s ElastiCache startup.
        assert mc.duration_s > s3.duration_s
        assert mc.duration_s > 140.0

    def test_elasticache_billed(self):
        result = train(_config(channel="memcached", max_epochs=2, loss_threshold=None))
        assert result.cost_breakdown.get("elasticache", 0) > 0

    def test_kmeans_via_em(self):
        result = train(
            _config(model="kmeans", algorithm="em", loss_threshold=0.25, max_epochs=15)
        )
        assert result.converged

    def test_oom_for_oversized_partition(self):
        # Criteo at W=4 puts a 7.5 GB partition in a 3 GB function.
        with pytest.raises(OutOfMemoryError):
            train(_config(dataset="criteo", workers=4, batch_size=100_000))

    def test_admm_rounds_counted(self):
        result = train(_config(algorithm="admm", max_epochs=20))
        assert result.comm_rounds <= 3  # ten epochs per round + loss rounds


class TestIaaSTraining:
    def test_pytorch_converges(self):
        result = train(_config(system="pytorch"))
        assert result.converged

    def test_iaas_startup_dominates_short_jobs(self):
        faas = train(_config())
        iaas = train(_config(system="pytorch"))
        assert iaas.startup_s > 100
        assert faas.startup_s < 5
        assert iaas.duration_s > faas.duration_s

    def test_iaas_cheaper_or_similar_cost(self):
        faas = train(_config())
        iaas = train(_config(system="pytorch"))
        # The key qualitative claim: FaaS is faster but not cheaper.
        assert faas.cost_total > 0.3 * iaas.cost_total

    def test_angel_slower_than_pytorch(self):
        pytorch = train(_config(system="pytorch", max_epochs=3, loss_threshold=None))
        angel = train(_config(system="angel", max_epochs=3, loss_threshold=None))
        assert angel.duration_s > pytorch.duration_s
        assert angel.breakdown.get("startup") > pytorch.breakdown.get("startup")

    def test_gpu_instance_accelerates_nn(self):
        cpu = train(
            _config(
                model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                system="pytorch", workers=4, batch_size=128,
                batch_scope="per_worker", loss_threshold=None, max_epochs=1,
            )
        )
        gpu = train(
            _config(
                model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                system="pytorch", workers=4, batch_size=128,
                batch_scope="per_worker", loss_threshold=None, max_epochs=1,
                instance="g3s.xlarge",
            )
        )
        assert gpu.breakdown.get("compute") < cpu.breakdown.get("compute") / 5

    def test_vm_billing_by_duration(self):
        result = train(_config(system="pytorch", max_epochs=2, loss_threshold=None))
        expected = 4 * 0.0464 * result.duration_s / 3600.0
        assert result.cost_breakdown["ec2"] == pytest.approx(expected)


class TestHybridTraining:
    def test_hybrid_trains_lr(self):
        result = train(
            _config(system="hybridps", algorithm="ga_sgd", max_epochs=4, lr=0.3)
        )
        assert result.final_loss < 0.693

    def test_hybrid_requires_gradient_algorithm(self):
        with pytest.raises(ConfigurationError):
            train(_config(system="hybridps", algorithm="ma_sgd"))

    def test_hybrid_bills_ps_vm(self):
        result = train(
            _config(system="hybridps", algorithm="ga_sgd", max_epochs=2, loss_threshold=None)
        )
        assert result.cost_breakdown.get("ec2", 0) > 0
        assert result.cost_breakdown.get("lambda", 0) > 0

    def test_hybrid_gated_by_ps_startup(self):
        result = train(
            _config(system="hybridps", algorithm="ga_sgd", max_epochs=2, loss_threshold=None)
        )
        assert result.duration_s > 120.0  # PS VM boot


class TestAsyncTraining:
    def test_asp_runs_and_records(self):
        result = train(
            _config(protocol="asp", algorithm="ga_sgd", max_epochs=5, lr=0.3,
                    straggler_jitter=0.3)
        )
        assert result.epochs >= 1
        assert len(result.history) > 4

    def test_asp_faster_per_epoch_than_bsp(self):
        bsp = train(
            _config(algorithm="ga_sgd", max_epochs=2, loss_threshold=None, lr=0.3)
        )
        asp = train(
            _config(protocol="asp", algorithm="ga_sgd", max_epochs=2,
                    loss_threshold=None, lr=0.3)
        )
        assert asp.duration_s < bsp.duration_s
