"""Unit + property tests for k-means and the MLP surrogate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.models.kmeans import KMeansModel
from repro.models.nn import MLPClassifier


def _blobs(rng, n=300, d=5, k=3, spread=4.0):
    centers = rng.standard_normal((k, d)) * spread
    labels = rng.integers(0, k, n)
    X = centers[labels] + rng.standard_normal((n, d)) * 0.3
    return X, labels


class TestKMeans:
    def test_em_monotonically_decreases_loss(self, rng):
        X, _ = _blobs(rng)
        model = KMeansModel(X.shape[1], k=3)
        centroids = model.init_centroids(X, rng)
        losses = []
        for _ in range(10):
            stats = model.local_stats(centroids, X)
            losses.append(model.loss_from_stats(stats))
            centroids = model.update(centroids, stats)
        for earlier, later in zip(losses, losses[1:]):
            assert later <= earlier + 1e-9

    def test_distributed_stats_equal_centralised(self, rng):
        X, _ = _blobs(rng, n=200)
        model = KMeansModel(X.shape[1], k=3)
        centroids = model.init_centroids(X, rng)
        full = model.local_stats(centroids, X)
        part1 = model.local_stats(centroids, X[:100])
        part2 = model.local_stats(centroids, X[100:])
        merged = model.merge_stats([part1, part2])
        np.testing.assert_allclose(merged["sums"], full["sums"])
        np.testing.assert_allclose(merged["counts"], full["counts"])
        assert merged["sq_dist"] == pytest.approx(full["sq_dist"])
        assert merged["sq_norm"] == pytest.approx(full["sq_norm"])

    def test_stats_vector_roundtrip(self, rng):
        X, _ = _blobs(rng, n=50)
        model = KMeansModel(X.shape[1], k=3)
        centroids = model.init_centroids(X, rng)
        stats = model.local_stats(centroids, X)
        recovered = model.vector_to_stats(model.stats_to_vector(stats))
        np.testing.assert_allclose(recovered["sums"], stats["sums"])
        np.testing.assert_allclose(recovered["counts"], stats["counts"])
        assert recovered["n"] == pytest.approx(stats["n"])

    def test_relative_error_bounded(self, rng):
        X, _ = _blobs(rng)
        model = KMeansModel(X.shape[1], k=3)
        centroids = model.init_centroids(X, rng)
        loss = model.loss(centroids, X)
        assert 0.0 <= loss

    def test_good_clustering_on_blobs(self, rng):
        X, _ = _blobs(rng, spread=8.0)
        model = KMeansModel(X.shape[1], k=3)
        centroids = model.init_centroids(X, rng)
        for _ in range(15):
            stats = model.local_stats(centroids, X)
            centroids = model.update(centroids, stats)
        assert model.loss(centroids, X) < 0.05

    def test_sparse_input(self, rng):
        X, _ = _blobs(rng, n=100)
        Xs = sparse.csr_matrix(np.abs(X))
        model = KMeansModel(X.shape[1], k=3)
        centroids = model.init_centroids(Xs, rng)
        stats = model.local_stats(centroids, Xs)
        assert stats["counts"].sum() == 100

    def test_empty_cluster_keeps_centroid(self, rng):
        X = np.zeros((10, 2))
        model = KMeansModel(2, k=3)
        centroids = np.array([[0.0, 0.0], [100.0, 100.0], [200.0, 200.0]])
        stats = model.local_stats(centroids, X)
        updated = model.update(centroids, stats)
        np.testing.assert_allclose(updated[1], centroids[1])
        np.testing.assert_allclose(updated[2], centroids[2])

    def test_flatten_roundtrip(self, rng):
        model = KMeansModel(4, k=2)
        centroids = rng.standard_normal((2, 4))
        np.testing.assert_allclose(model.unflatten(model.flatten(centroids)), centroids)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KMeansModel(4, k=0)


class TestMLP:
    def test_param_count(self):
        model = MLPClassifier(10, (8,), 3)
        assert model.n_params == 10 * 8 + 8 + 8 * 3 + 3

    def test_gradient_matches_finite_differences(self, rng):
        model = MLPClassifier(5, (4,), 3)
        params = model.init_params(rng).astype(np.float64)
        X = rng.standard_normal((12, 5)).astype(np.float32)
        y = rng.integers(0, 3, 12)
        _, grad = model.loss_and_gradient(params.astype(np.float32), X, y)
        eps = 1e-3
        checked = 0
        for j in range(0, model.n_params, 7):
            delta = np.zeros(model.n_params, dtype=np.float32)
            delta[j] = eps
            up = model.loss((params + delta).astype(np.float32), X, y)
            down = model.loss((params - delta).astype(np.float32), X, y)
            numeric = (up - down) / (2 * eps)
            assert grad[j] == pytest.approx(numeric, rel=0.05, abs=5e-3)
            checked += 1
        assert checked > 5

    def test_training_reduces_loss(self, rng):
        model = MLPClassifier(6, (16,), 4)
        centers = rng.standard_normal((4, 6)) * 3
        y = rng.integers(0, 4, 256)
        X = (centers[y] + rng.standard_normal((256, 6)) * 0.3).astype(np.float32)
        params = model.init_params(rng)
        first = model.loss(params, X, y)
        for _ in range(120):
            _, grad = model.loss_and_gradient(params, X, y)
            params = params - (0.5 * grad).astype(np.float32)
        assert model.loss(params, X, y) < first / 4

    def test_predict_shapes(self, rng):
        model = MLPClassifier(5, (4,), 3)
        params = model.init_params(rng)
        X = rng.standard_normal((7, 5)).astype(np.float32)
        assert model.predict(params, X).shape == (7,)

    def test_invalid_classes_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifier(5, (4,), 1)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    k=st.integers(min_value=1, max_value=5),
)
def test_property_kmeans_counts_conserved(seed, k):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((50, 4))
    model = KMeansModel(4, k=k)
    centroids = model.init_centroids(X, rng)
    stats = model.local_stats(centroids, X)
    assert stats["counts"].sum() == pytest.approx(50)
    assert stats["sq_dist"] >= 0
    # Total mass is conserved: sum of cluster sums equals column sums.
    np.testing.assert_allclose(stats["sums"].sum(axis=0), X.sum(axis=0), atol=1e-8)
