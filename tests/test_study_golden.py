"""Golden tests: legacy ``run*()`` shims vs the pre-redesign loops.

Each experiment module ported onto the Study protocol kept its old
``run*()`` helper as a shim over the sweep orchestrator. These tests
re-implement the *old* hand-rolled loops (direct ``train()`` calls,
copied verbatim from the pre-ISSUE-5 modules) at scaled-down settings
and assert the shim output is bit-identical — loss histories through
the artifact JSON roundtrip included. ``result_from_artifact`` does not
reconstruct ``per_worker`` traces, so equality is asserted field by
field over everything the aggregators and reports consume.
"""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult
from repro.errors import ItemTooLargeError, StorageError
from repro.experiments import (
    cost_sanity,
    fig7_algorithms,
    fig10_breakdown,
    fig13_validation,
    table1_channels,
    table5_pipeline,
)
from repro.experiments.report import ratio
from repro.experiments.workloads import get_workload

SEED = 20210620


def assert_result_equal(shim: RunResult, old: RunResult) -> None:
    """Bitwise equality over every field that survives the JSON roundtrip."""
    assert shim.config == old.config
    assert shim.converged == old.converged
    assert shim.final_loss == old.final_loss
    assert shim.duration_s == old.duration_s
    assert shim.cost_total == old.cost_total
    assert shim.cost_breakdown == old.cost_breakdown
    assert shim.epochs == old.epochs
    assert shim.comm_rounds == old.comm_rounds
    assert shim.checkpoints == old.checkpoints
    assert shim.final_accuracy == old.final_accuracy
    assert shim.breakdown.as_dict() == old.breakdown.as_dict()
    assert shim.history == old.history  # loss history, float-exact
    assert shim.events == old.events


class TestFig10Golden:
    def test_run_matches_old_loop(self):
        epochs, workers = 1.0, 4
        old_rows = []
        for system in fig10_breakdown.SYSTEMS:
            config = TrainingConfig(
                model="lr", dataset="higgs",
                algorithm="ma_sgd" if system != "hybridps" else "ga_sgd",
                system=system, workers=workers, channel="s3",
                batch_size=10_000, lr=0.05, loss_threshold=None,
                max_epochs=epochs, seed=SEED,
            )
            old_rows.append(fig10_breakdown._to_row(system, train(config)))
        assert fig10_breakdown.run(epochs=epochs, workers=workers) == old_rows


class TestFig13Golden:
    def test_run_fixed_epochs_matches_old_loop(self):
        from repro.analytics.model import AnalyticalModel, WorkloadParams

        epoch_grid, workers = (1, 2), 4
        workload = get_workload("lr", "higgs")
        params = fig13_validation._params_for("lr", "higgs", "ma_sgd", workers)
        old_points = []
        for epochs in epoch_grid:
            faas = train(TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd",
                system="lambdaml", workers=workers, channel="s3",
                batch_size=workload.batch_size, lr=workload.lr,
                loss_threshold=None, max_epochs=float(epochs), seed=SEED,
            ))
            iaas = train(TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd",
                system="pytorch", workers=workers, instance="t2.medium",
                batch_size=workload.batch_size, lr=workload.lr,
                loss_threshold=None, max_epochs=float(epochs), seed=SEED,
            ))
            scaled = WorkloadParams(**{
                **params.__dict__,
                "epochs_faas": float(epochs), "epochs_iaas": float(epochs),
            })
            model = AnalyticalModel(scaled)
            old_points.append(fig13_validation.ValidationPoint(
                epochs=float(epochs),
                faas_actual_s=faas.duration_s,
                faas_predicted_s=model.faas_seconds(workers),
                iaas_actual_s=iaas.duration_s,
                iaas_predicted_s=model.iaas_seconds(workers),
            ))
        shim = fig13_validation.run_fixed_epochs(
            epoch_grid=epoch_grid, workers=workers
        )
        assert shim == old_points

    @pytest.mark.slow
    def test_run_estimator_matches_old_loop(self):
        from repro.analytics.estimator import SamplingEstimator
        from repro.analytics.model import AnalyticalModel, WorkloadParams

        cases, algorithms, workers = (("lr", "higgs"),), ("ma_sgd",), 4
        estimator = SamplingEstimator(sample_fraction=0.1, seed=SEED)
        old_points = []
        for model_name, dataset in cases:
            workload = get_workload(model_name, dataset)
            for algorithm in algorithms:
                estimate = estimator.estimate(
                    model_name, dataset, algorithm,
                    lr=workload.lr, threshold=workload.threshold,
                    batch_size=max(32, workload.batch_size // 100),
                    max_epochs=workload.max_epochs,
                )
                actual = train(TrainingConfig(
                    model=model_name, dataset=dataset, algorithm=algorithm,
                    system="lambdaml", workers=workers, channel="s3",
                    batch_size=workload.batch_size, lr=workload.lr,
                    loss_threshold=workload.threshold,
                    max_epochs=workload.max_epochs, seed=SEED,
                ))
                params = fig13_validation._params_for(
                    model_name, dataset, algorithm, workers
                )
                scaled = WorkloadParams(**{
                    **params.__dict__,
                    "epochs_faas": estimate.epochs, "epochs_iaas": estimate.epochs,
                })
                old_points.append(fig13_validation.EstimatorPoint(
                    workload=f"{model_name}/{dataset}",
                    algorithm=algorithm,
                    estimated_epochs=estimate.epochs,
                    actual_epochs=actual.epochs,
                    predicted_runtime_s=AnalyticalModel(scaled).faas_seconds(workers),
                    actual_runtime_s=actual.duration_s,
                ))
        shim = fig13_validation.run_estimator(
            cases=cases, algorithms=algorithms, workers=workers
        )
        assert shim == old_points


@pytest.mark.slow
class TestFig7Golden:
    def test_run_matches_old_loop(self):
        model, dataset = "lr", "higgs"
        worker_counts, max_epochs, ga_max_epochs = (4, 8), 1.0, 0.5
        workload = get_workload(model, dataset)
        old_results = {}
        for algorithm in ("admm", "ma_sgd", "ga_sgd"):
            for workers in worker_counts:
                epochs_cap = max_epochs or workload.max_epochs
                if algorithm == "ga_sgd" and ga_max_epochs is not None:
                    epochs_cap = ga_max_epochs
                config = TrainingConfig(
                    model=model, dataset=dataset, algorithm=algorithm,
                    system="lambdaml", workers=workers, channel="memcached",
                    channel_prestarted=True, batch_size=workload.batch_size,
                    batch_scope=workload.batch_scope, lr=workload.lr,
                    k=workload.k, loss_threshold=workload.threshold,
                    max_epochs=epochs_cap, partition_mode="iid", seed=SEED,
                )
                old_results[(algorithm, workers)] = train(config)
        comparison = fig7_algorithms.run(
            model, dataset, worker_counts=worker_counts,
            max_epochs=max_epochs, ga_max_epochs=ga_max_epochs,
        )
        assert comparison.workload == f"{model}/{dataset}"
        assert comparison.results.keys() == old_results.keys()
        for key, old in old_results.items():
            assert_result_equal(comparison.results[key], old)


@pytest.mark.slow
class TestTable1Golden:
    def test_run_workload_matches_old_loop(self):
        model, dataset, workers, max_epochs = "lr", "higgs", 4, 1.0
        workload = get_workload(model, dataset)

        def make_config(**overrides):
            return TrainingConfig(
                model=model, dataset=dataset,
                algorithm=overrides.pop("algorithm", workload.algorithm),
                system=overrides.pop("system", "lambdaml"),
                workers=workers, batch_size=workload.batch_size,
                batch_scope=workload.batch_scope, lr=workload.lr,
                k=workload.k, loss_threshold=workload.threshold,
                max_epochs=max_epochs, seed=SEED, **overrides,
            )

        results = {}
        for channel in table1_channels.CHANNELS:
            try:
                results[channel] = train(make_config(channel=channel))
            except (ItemTooLargeError, StorageError):
                results[channel] = None
        results["vm-ps"] = train(make_config(system="hybridps", algorithm="ga_sgd"))
        s3 = results["s3"]
        old_row = table1_channels.ChannelRow(
            workload=f"{model}/{dataset}",
            workers=workers,
            s3_time=s3.duration_s,
            s3_cost=s3.cost_total,
            slowdown={
                name: ratio(r.duration_s if r else None, s3.duration_s)
                for name, r in results.items() if name != "s3"
            },
            rel_cost={
                name: ratio(r.cost_total if r else None, s3.cost_total)
                for name, r in results.items() if name != "s3"
            },
        )
        shim = table1_channels.run_workload(
            model, dataset, workers, max_epochs=max_epochs
        )
        assert shim == old_row

    def test_dynamodb_feasibility_matches_the_store(self):
        # The grid-time exclusion must mirror the simulated store: the
        # old loop learned "N/A" from ItemTooLargeError mid-run.
        assert table1_channels.dynamodb_feasible("lr", "higgs")
        assert table1_channels.dynamodb_feasible("kmeans", "higgs", k=1000)
        assert not table1_channels.dynamodb_feasible("mobilenet", "cifar10")
        with pytest.raises(ItemTooLargeError):
            train(TrainingConfig(
                model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                system="lambdaml", workers=2, channel="dynamodb",
                batch_size=128, batch_scope="per_worker", lr=0.05,
                loss_threshold=None, max_epochs=0.05, seed=SEED,
            ))

    def test_infeasible_dynamodb_renders_na(self):
        # mobilenet/dynamodb is excluded from the grid, so the shim's
        # row must carry the None the old exception handler produced.
        points = table1_channels.workload_points(
            "mobilenet", "cifar10", 2, max_epochs=1.0
        )
        assert all(
            p.config_kwargs.get("channel") != "dynamodb" for p in points
        )


@pytest.mark.slow
class TestTable5Golden:
    def test_run_case_matches_old_loop(self):
        from repro.data.datasets import get_spec
        from repro.iaas.cluster import iaas_startup_seconds
        from repro.pricing.catalog import DEFAULT_CATALOG

        model, dataset = "lr", "higgs"
        epochs_per_job, grid = 0.5, (0.01, 0.02)
        workers = table5_pipeline.WORKERS
        workload = get_workload(model, dataset)

        def config(system, lr, **kw):
            return TrainingConfig(
                model=model, dataset=dataset, algorithm=workload.algorithm,
                system=system, workers=workers, channel="s3",
                batch_size=workload.batch_size, batch_scope=workload.batch_scope,
                lr=lr, loss_threshold=None, max_epochs=epochs_per_job,
                seed=SEED, **kw,
            )

        spec = get_spec(dataset)
        prep = table5_pipeline._preprocess_seconds(spec.size_bytes, workers)
        old_rows = []
        for platform in ("faas", "iaas"):
            total_cost = 0.0
            accuracies = []
            if platform == "faas":
                durations = []
                for lr in grid:
                    result = train(config("lambdaml", lr))
                    durations.append(result.duration_s)
                    total_cost += result.cost_total
                    accuracies.append(result.final_accuracy)
                runtime = prep + max(durations)
                total_cost += (
                    workers * 3.0 * prep * DEFAULT_CATALOG.lambda_per_gb_second
                )
            else:
                startup = iaas_startup_seconds(workers)
                job_seconds = 0.0
                for lr in grid:
                    result = train(config("pytorch", lr, instance="t2.medium"))
                    job_seconds += result.duration_s - result.startup_s
                    accuracies.append(result.final_accuracy)
                runtime = prep + startup + job_seconds
                total_cost = (
                    workers * DEFAULT_CATALOG.ec2_price("t2.medium")
                    * runtime / 3600.0
                )
            best = max((a for a in accuracies if a is not None), default=None)
            old_rows.append(table5_pipeline.PipelineRow(
                workload=f"{model}/{dataset}", platform=platform,
                runtime_s=runtime, accuracy=best, cost=total_cost,
            ))
        shim = table5_pipeline.run_case(
            model, dataset, epochs_per_job=epochs_per_job, grid=grid
        )
        assert shim == old_rows


@pytest.mark.slow
class TestCostSanityGolden:
    def test_run_case_matches_old_loop(self):
        model, dataset, workers, max_epochs = "lr", "higgs", 4, 1.0
        workload = get_workload(model, dataset)

        def config(system, w):
            return TrainingConfig(
                model=model, dataset=dataset, algorithm=workload.algorithm,
                system=system, workers=w, channel="s3",
                batch_size=workload.batch_size, batch_scope=workload.batch_scope,
                lr=workload.lr, k=workload.k,
                loss_threshold=workload.threshold, max_epochs=max_epochs,
                seed=SEED,
            )

        single = train(config("pytorch", 1))
        faas = train(config("lambdaml", workers))
        iaas = train(config("pytorch", workers))
        old_row = cost_sanity.SanityRow(
            workload=f"{model}/{dataset}",
            single_s=single.duration_s,
            faas_s=faas.duration_s,
            iaas_s=iaas.duration_s,
            faas_speedup=single.duration_s / faas.duration_s,
            iaas_speedup=single.duration_s / iaas.duration_s,
        )
        shim = cost_sanity.run_case(
            model, dataset, workers=workers, max_epochs=max_epochs
        )
        assert shim == old_row
