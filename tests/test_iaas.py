"""Unit tests for the IaaS substrate: VMs, clusters, MPI, parameter server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iaas.cluster import VMCluster, iaas_startup_seconds
from repro.iaas.mpi import MPICommunicator
from repro.iaas.ps import (
    ParameterServer,
    PSTimingModel,
    make_parameter_server,
)
from repro.iaas.vm import INSTANCES, get_instance
from repro.simulation.commands import Get, Put
from repro.simulation.engine import Engine
from repro.utils.serialization import SizedPayload

MB = 1024 * 1024


class TestVMCatalog:
    def test_known_instances(self):
        assert get_instance("t2.medium").vcpus == 2
        assert get_instance("c5.4xlarge").vcpus == 16
        assert get_instance("g3s.xlarge").gpu == "m60"
        assert get_instance("g4dn.xlarge").gpu == "t4"

    def test_table6_network_constants(self):
        assert get_instance("t2.medium").network_bps == 120 * MB
        assert get_instance("c5.large").network_bps == 225 * MB
        assert get_instance("t2.medium").network_latency_s == pytest.approx(5e-4)
        assert get_instance("c5.large").network_latency_s == pytest.approx(1.5e-4)

    def test_unknown_instance(self):
        with pytest.raises(ConfigurationError):
            get_instance("z1.mystery")

    def test_all_instances_priced(self):
        from repro.pricing.catalog import DEFAULT_CATALOG

        for name in INSTANCES:
            assert DEFAULT_CATALOG.ec2_price(name) > 0


class TestClusterStartup:
    def test_anchors_match_table6(self):
        assert iaas_startup_seconds(10) == pytest.approx(132.0)
        assert iaas_startup_seconds(50) == pytest.approx(160.0)
        assert iaas_startup_seconds(100) == pytest.approx(292.0)
        assert iaas_startup_seconds(200) == pytest.approx(606.0)

    def test_monotone(self):
        values = [iaas_startup_seconds(w) for w in (1, 10, 25, 50, 150, 200, 300)]
        assert values == sorted(values)

    def test_iaas_much_slower_than_faas_startup(self):
        from repro.faas.runtime import faas_startup_seconds

        for w in (10, 50, 100, 200):
            assert iaas_startup_seconds(w) > 10 * faas_startup_seconds(w)


class TestRingAllReduce:
    def test_formula(self):
        cluster = VMCluster.build("t2.medium", 10)
        m = 10 * MB
        expected = (2 * 10 - 2) * ((m / 10) / (120 * MB) + 5e-4)
        assert cluster.ring_allreduce_seconds(m) == pytest.approx(expected)

    def test_single_vm_free(self):
        cluster = VMCluster.build("t2.medium", 1)
        assert cluster.ring_allreduce_seconds(10 * MB) == 0.0

    def test_faster_network_is_faster(self):
        t2 = VMCluster.build("t2.medium", 10)
        c5 = VMCluster.build("c5.large", 10)
        assert c5.ring_allreduce_seconds(10 * MB) < t2.ring_allreduce_seconds(10 * MB)


class TestMPICollectives:
    def test_allreduce_through_engine(self):
        engine = Engine()
        comm = MPICommunicator(VMCluster.build("c5.large", 3))
        results = {}

        def worker(rank):
            merged = yield comm.allreduce(np.full(4, float(rank)), 1024, reduce="mean")
            results[rank] = merged

        for rank in range(3):
            engine.spawn(worker(rank), f"w{rank}")
        engine.run()
        for merged in results.values():
            np.testing.assert_allclose(merged, np.full(4, 1.0))

    def test_barrier_synchronises(self):
        engine = Engine()
        comm = MPICommunicator(VMCluster.build("c5.large", 2))
        times = {}

        def worker(rank, delay):
            from repro.simulation.commands import Sleep

            yield Sleep(delay)
            yield comm.barrier()
            times[rank] = engine.now

        engine.spawn(worker(0, 1.0), "w0")
        engine.spawn(worker(1, 5.0), "w1")
        engine.run()
        assert times[0] == pytest.approx(times[1])
        assert times[0] >= 5.0


class TestPSTimingModel:
    def test_table2_single_lambda_grpc(self):
        model = PSTimingModel(get_instance("c5.4xlarge"), rpc="grpc", lambda_memory_gb=3.0)
        # Paper: 1.85 s for 75 MB.
        assert model.data_transmission_s(75 * MB, 1) == pytest.approx(1.85, rel=0.15)

    def test_table2_thrift_much_slower(self):
        grpc = PSTimingModel(get_instance("c5.4xlarge"), rpc="grpc")
        thrift = PSTimingModel(get_instance("c5.4xlarge"), rpc="thrift")
        assert thrift.data_transmission_s(75 * MB, 1) > 8 * grpc.data_transmission_s(75 * MB, 1)

    def test_less_memory_is_slower(self):
        big = PSTimingModel(get_instance("c5.4xlarge"), lambda_memory_gb=3.0)
        small = PSTimingModel(get_instance("c5.4xlarge"), lambda_memory_gb=1.0)
        assert small.data_transmission_s(75 * MB, 1) > big.data_transmission_s(75 * MB, 1)

    def test_concurrency_contention(self):
        model = PSTimingModel(get_instance("c5.4xlarge"))
        assert model.data_transmission_s(75 * MB, 10) > model.data_transmission_s(75 * MB, 1)

    def test_update_scales_with_workers(self):
        model = PSTimingModel(get_instance("c5.4xlarge"))
        assert model.model_update_s(75 * MB, 10) == pytest.approx(
            10 * model.model_update_s(75 * MB, 1)
        )

    def test_grpc_update_slower_than_thrift(self):
        # Table 2's counter-intuitive right columns.
        grpc = PSTimingModel(get_instance("c5.4xlarge"), rpc="grpc")
        thrift = PSTimingModel(get_instance("c5.4xlarge"), rpc="thrift")
        assert grpc.model_update_s(75 * MB, 1) > thrift.model_update_s(75 * MB, 1)

    def test_bandwidth_override(self):
        now = PSTimingModel(get_instance("c5.4xlarge"))
        fast = PSTimingModel(get_instance("c5.4xlarge"), bandwidth_override_bps=1250 * MB)
        assert fast.transfer_s(75 * MB) < now.transfer_s(75 * MB) / 10

    def test_invalid_rpc(self):
        with pytest.raises(ConfigurationError):
            PSTimingModel(get_instance("c5.4xlarge"), rpc="rest")


class TestParameterServer:
    def _make(self, lr=0.1, dims=8):
        return make_parameter_server(
            "c5.4xlarge", init_params=np.zeros(dims), logical_param_bytes=dims * 8, lr=lr
        )

    def test_gradient_push_applies_update(self):
        engine = Engine()
        ps = self._make(lr=0.5, dims=4)
        ps.available_at = 0.0

        def worker():
            yield Put(ps, "grad/0/0", SizedPayload(np.ones(4), 32))
            pulled = yield Get(ps, ps.MODEL_KEY)
            return pulled

        p = engine.spawn(worker(), "w")
        engine.run()
        np.testing.assert_allclose(p.result.value, np.full(4, -0.5))

    def test_pull_returns_copy(self):
        engine = Engine()
        ps = self._make(dims=3)
        ps.available_at = 0.0

        def worker():
            pulled = yield Get(ps, ps.MODEL_KEY)
            pulled.value[:] = 99.0
            again = yield Get(ps, ps.MODEL_KEY)
            return again

        p = engine.spawn(worker(), "w")
        engine.run()
        np.testing.assert_allclose(p.result.value, np.zeros(3))

    def test_ps_gated_by_vm_startup(self):
        ps = self._make()
        assert ps.available_at == pytest.approx(iaas_startup_seconds(1))

    def test_kv_mode_stores_plainly(self):
        ps = ParameterServer(
            PSTimingModel(get_instance("c5.4xlarge")),
            init_params=np.zeros(2),
            logical_param_bytes=16,
            update_mode="kv",
        )
        ps._do_put("grad/0/0", SizedPayload(np.ones(2), 16))
        assert ps._exists("grad/0/0")
        np.testing.assert_allclose(ps.params, np.zeros(2))
