"""The fault plane's primitives: plans, retries, engine kill semantics.

Everything here is about *determinism*: fault schedules are pure
functions of the seed, so the same config must inject byte-identical
faults in any process, and the engine must keep its bookkeeping exact
when processes die mid-wait.
"""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.errors import (
    ConfigurationError,
    TransientStorageError,
)
from repro.faults import (
    BACKOFF_FACTOR,
    MAX_BACKOFF_S,
    FaultPlan,
    RetryPolicy,
    StorageFaultPolicy,
    unit_draw,
)
from repro.simulation.commands import Put, Sleep, WaitKey
from repro.simulation.engine import Engine, ProcessState
from repro.storage.services import S3Store


def _take(iterator, n):
    out = []
    for value in iterator:
        out.append(value)
        if len(out) == n:
            break
    return out


class TestFaultPlanDeterminism:
    def test_unit_draw_is_stable_and_uniformish(self):
        draws = [unit_draw(7, "crash/0", i) for i in range(2000)]
        assert draws == [unit_draw(7, "crash/0", i) for i in range(2000)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55

    def test_crash_streams_are_reproducible_per_rank(self):
        plan = FaultPlan(seed=3, mttf_s=120.0)
        first = _take(plan.crash_times(2), 16)
        again = _take(plan.crash_times(2), 16)
        assert first == again
        assert first == sorted(first)
        assert all(t > 0 for t in first)

    def test_ranks_do_not_share_crash_streams(self):
        plan = FaultPlan(seed=3, mttf_s=120.0)
        assert _take(plan.crash_times(0), 8) != _take(plan.crash_times(1), 8)

    def test_seed_changes_the_schedule(self):
        a = FaultPlan(seed=3, mttf_s=120.0)
        b = FaultPlan(seed=4, mttf_s=120.0)
        assert _take(a.crash_times(0), 8) != _take(b.crash_times(0), 8)

    def test_crash_interarrivals_have_roughly_the_requested_mean(self):
        plan = FaultPlan(seed=11, mttf_s=50.0)
        times = _take(plan.crash_times(0), 4000)
        mean = times[-1] / len(times)
        assert mean == pytest.approx(50.0, rel=0.1)

    def test_no_mttf_means_no_crashes(self):
        plan = FaultPlan(seed=3)
        assert _take(plan.crash_times(0), 5) == []
        assert not plan.crashes_enabled
        assert not plan.active

    def test_cold_start_jitter_bounds_and_determinism(self):
        plan = FaultPlan(seed=3, cold_start_jitter=0.5)
        draws = [plan.cold_start_s(1, inc, 1.0) for inc in range(2, 12)]
        assert draws == [plan.cold_start_s(1, inc, 1.0) for inc in range(2, 12)]
        assert all(1.0 <= d < 1.5 for d in draws)
        assert len(set(draws)) > 1  # actually varies per incarnation
        no_jitter = FaultPlan(seed=3)
        assert no_jitter.cold_start_s(1, 2, 1.0) == 1.0

    def test_storage_failures_respect_rate_and_limit(self):
        plan = FaultPlan(seed=3, storage_error_rate=0.3, retry=RetryPolicy(limit=4))
        counts = [plan.storage_failures("data", i) for i in range(4000)]
        assert counts == [plan.storage_failures("data", i) for i in range(4000)]
        assert all(0 <= c <= 5 for c in counts)  # capped at limit + 1
        rate = sum(1 for c in counts if c > 0) / len(counts)
        assert rate == pytest.approx(0.3, abs=0.05)
        # Independent streams per store label.
        assert counts != [plan.storage_failures("channel", i) for i in range(4000)]

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, mttf_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, storage_error_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, cold_start_jitter=-0.1)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(limit=10, base_s=0.1)
        gaps = [policy.backoff_s(i) for i in range(8)]
        for i, gap in enumerate(gaps):
            assert gap == pytest.approx(min(0.1 * BACKOFF_FACTOR**i, MAX_BACKOFF_S))
        assert gaps[-1] == MAX_BACKOFF_S

    def test_total_backoff_sums_the_gaps(self):
        policy = RetryPolicy(limit=5, base_s=0.2)
        assert policy.total_backoff_s(3) == pytest.approx(0.2 + 0.4 + 0.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(limit=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_s=-0.5)


class TestConfigFaultFields:
    def _config(self, **kw):
        return TrainingConfig(model="lr", dataset="higgs", algorithm="ma_sgd", **kw)

    def test_crash_rate_converts_to_mttf(self):
        assert self._config().fault_mttf_s is None
        assert self._config(crash_rate=4.0).fault_mttf_s == pytest.approx(900.0)
        assert self._config(crash_rate=4.0, mttf_s=60.0).fault_mttf_s == 60.0

    def test_faults_enabled_flag(self):
        assert not self._config().faults_enabled
        assert self._config(crash_rate=1.0).faults_enabled
        assert self._config(storage_error_rate=0.01).faults_enabled

    def test_crash_injection_refused_for_timing_coupled_platforms(self):
        with pytest.raises(ConfigurationError, match="BSP FaaS/IaaS"):
            self._config(protocol="asp", crash_rate=1.0)
        with pytest.raises(ConfigurationError, match="BSP FaaS/IaaS"):
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ga_sgd",
                system="hybridps", mttf_s=100.0,
            )

    def test_storage_errors_allowed_anywhere(self):
        self._config(protocol="asp", storage_error_rate=0.01)

    def test_field_validation(self):
        for bad in (
            dict(crash_rate=-1.0),
            dict(mttf_s=-5.0),
            dict(storage_error_rate=1.5),
            dict(storage_retry_limit=-1),
            dict(storage_retry_base_s=-0.1),
            dict(cold_start_jitter=-0.2),
        ):
            with pytest.raises(ConfigurationError):
                self._config(**bad)

    def test_fault_axes_share_the_statistical_fingerprint(self):
        clean = self._config()
        faulty = self._config(
            crash_rate=8.0, storage_error_rate=0.05,
            storage_retry_limit=9, cold_start_jitter=0.3,
        )
        assert clean.stat_hash() == faulty.stat_hash()
        # ...but not the config hash: fault points are distinct artifacts.
        from repro.sweep.grid import config_hash

        assert config_hash(clean) != config_hash(faulty)


class TestStorageRetryLayer:
    def _flaky_store(self, rate=0.9, limit=5):
        store = S3Store()
        plan = FaultPlan(seed=3, storage_error_rate=rate, retry=RetryPolicy(limit=limit))
        store.fault_policy = StorageFaultPolicy(plan, "data")
        return store

    def test_fault_free_store_is_untouched(self):
        clean = S3Store()
        start, end = clean.schedule_op("put", 1000, 0.0)
        assert clean.fault_events == {
            "storage_errors": 0,
            "retries": 0,
            "backoff_s": 0.0,
            "exhaustions": 0,
        }
        assert end - start == pytest.approx(clean.op_duration("put", 1000))

    def test_failed_attempts_stretch_the_operation_and_count_events(self):
        store = self._flaky_store(rate=0.9, limit=50)
        clean = S3Store()
        baseline = clean.op_duration("put", 1000)
        # With rate 0.9 the very first ops fail at least once.
        stretched = False
        for _ in range(20):
            start, end = store.schedule_op("put", 1000, 0.0)
            if end - start > baseline + 1e-12:
                stretched = True
        assert stretched
        assert store.fault_events["storage_errors"] > 0
        assert store.fault_events["retries"] == store.fault_events["storage_errors"]
        assert store.fault_events["backoff_s"] > 0

    def test_exhausted_retries_raise_transient_storage_error(self):
        store = self._flaky_store(rate=0.999, limit=0)
        with pytest.raises(TransientStorageError, match="retry budget"):
            for _ in range(50):
                store.schedule_op("get", 10, 0.0)

    def test_list_and_delete_never_fault(self):
        store = self._flaky_store(rate=0.999, limit=0)
        for _ in range(50):
            store.schedule_op("list", 0, 0.0)
            store.schedule_op("delete", 0, 0.0)
        assert store.fault_events["storage_errors"] == 0

    def test_retry_timing_is_deterministic(self):
        def run():
            store = self._flaky_store(rate=0.5, limit=8)
            return [store.schedule_op("put", 100, float(i)) for i in range(40)]

        assert run() == run()


class TestEngineKillSemantics:
    def test_killed_waiter_is_deregistered_and_never_billed(self):
        engine = Engine()
        store = S3Store()

        def waiter():
            yield WaitKey(store, "late", poll_interval=0.1)

        def producer():
            yield Sleep(5.0)
            yield Put(store, "late", b"x")

        blocked = engine.spawn(waiter(), "blocked")
        engine.spawn(producer(), "producer")
        engine.run(until=1.0)
        assert blocked.state is ProcessState.BLOCKED
        assert engine._blocked_on_store == 1
        engine.kill(blocked)
        assert engine._blocked_on_store == 0
        counters_at_kill = dict(store.fault_events)
        engine.run()
        # The put completed; nobody polled for it from beyond the grave.
        assert store._exists("late")
        assert blocked.state is ProcessState.KILLED
        assert blocked.trace.get("wait") == 0.0
        assert store.fault_events == counters_at_kill

    def test_daemons_do_not_extend_the_simulated_clock(self):
        engine = Engine()

        def worker():
            yield Sleep(2.0)
            return "done"

        def monitor():
            while True:
                yield Sleep(100.0)

        proc = engine.spawn(worker(), "worker")
        engine.spawn(monitor(), "monitor", daemon=True)
        engine.run()
        assert proc.result == "done"
        # The monitor's pending 100 s wake-up must not drag the clock.
        assert engine.now == pytest.approx(2.0)

    def test_kill_mid_count_wait_unregisters_the_prefix(self):
        engine = Engine()
        store = S3Store()
        from repro.simulation.commands import WaitKeyCount

        def waiter():
            yield WaitKeyCount(store, "parts/", 3, poll_interval=0.1)

        def sleeper():
            yield Sleep(1.0)

        proc = engine.spawn(waiter(), "w")
        engine.spawn(sleeper(), "s")
        engine.run(until=0.5)
        assert store._prefix_counts  # live counter registered
        engine.kill(proc)
        assert not store._prefix_counts  # cleanly unregistered
