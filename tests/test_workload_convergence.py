"""Acceptance: every tuned workload converges under its registry settings.

This suite keeps `repro.experiments.workloads` honest — if a generator,
algorithm or threshold drifts, the corresponding workload stops
converging and this file points at it. Worker counts are scaled down
(convergence is what's under test, not scale).
"""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.experiments.workloads import WORKLOADS

# Full-substrate convergence runs are the suite's long tail (the
# Criteo case alone is ~80 s); CI's fast lane skips them.
pytestmark = pytest.mark.slow

# (workload key, scaled workers, epoch cap) — chosen so each case runs
# in seconds while leaving headroom above the expected convergence point.
CASES = [
    ("lr/higgs", 10, 40),
    ("svm/higgs", 10, 40),
    ("kmeans/higgs", 10, 40),
    ("lr/rcv1", 5, 40),
    ("svm/rcv1", 5, 40),
    ("kmeans/rcv1", 10, 30),
    ("lr/yfcc100m", 50, 40),
    ("svm/yfcc100m", 50, 30),
    ("kmeans/yfcc100m", 50, 30),
    ("lr/criteo", 40, 15),
    ("mobilenet/cifar10", 10, 25),
    ("resnet50/cifar10", 10, 15),
]


@pytest.mark.parametrize("key,workers,max_epochs", CASES, ids=[c[0] for c in CASES])
def test_workload_converges(key, workers, max_epochs):
    w = WORKLOADS[key]
    config = TrainingConfig(
        model=w.model,
        dataset=w.dataset,
        algorithm=w.algorithm,
        system="lambdaml",
        workers=workers,
        channel="memcached",
        channel_prestarted=True,
        batch_size=w.batch_size,
        batch_scope=w.batch_scope,
        min_local_batch=w.min_local_batch,
        lr=w.lr,
        k=w.k,
        loss_threshold=w.threshold,
        max_epochs=max_epochs,
        seed=20210620,
    )
    result = train(config)
    assert result.converged, (
        f"{key} did not reach {w.threshold} (got {result.final_loss:.4f} "
        f"after {result.epochs:.1f} epochs)"
    )
    # Convergence must be attributable: loss actually improved.
    first = result.history[0].loss
    assert result.final_loss < first
