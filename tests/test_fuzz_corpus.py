"""Replay the fuzz regression corpus: every entry, every run, forever.

Each file under ``tests/data/fuzz_corpus/`` is a shrunk counterexample
a fuzz campaign once found (or a hand-pinned guard with the same
shape). Replaying an entry re-runs its invariant on its stored config
kwargs and expects it to hold — a red entry here means a bug the
fuzzer already caught has come back. New campaign findings land in the
same directory (``repro fuzz`` saves there by default), so this test
grows with the corpus without changing.
"""

from __future__ import annotations

import pytest

from repro.fuzz import DEFAULT_CORPUS_DIR, load_corpus, replay_entry

ENTRIES = load_corpus(DEFAULT_CORPUS_DIR)


def test_corpus_is_not_empty():
    """The tree ships seed entries; an empty corpus means a broken path."""
    assert ENTRIES, f"no corpus entries found under {DEFAULT_CORPUS_DIR}"


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda entry: entry.name)
def test_corpus_entry_replays_green(entry):
    verdict = replay_entry(entry)
    assert verdict is None, (
        f"corpus entry {entry.name} is red again: {verdict}\n"
        f"original context: {entry.message}\n"
        f"repro kwargs: {entry.config_kwargs}"
    )
