"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads: multithreaded reductions
# reorder float sums under load, which can flip knife-edge convergence
# assertions between runs. Single-threaded numpy is bit-deterministic
# (and faster on this suite's small matrices).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import signal
import threading

import numpy as np
import pytest

from repro.pricing.meter import CostMeter
from repro.simulation.engine import Engine
from repro.storage.services import S3Store


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    """Abort any test that exceeds the pytest.ini wall-clock ceiling.

    A complexity regression on the engine's hot path used to *hang*
    the suite (the seed's O(w^3) notify scans never finished); this
    turns it into one fast, attributable failure. SIGALRM only works
    on the main thread of a POSIX process — anywhere else the fixture
    is a no-op.
    """
    seconds = float(request.config.getini("per_test_timeout_s"))
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _abort(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {seconds:.0f}s per-test timeout "
            "(per_test_timeout_s in pytest.ini)"
        )

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def s3() -> S3Store:
    return S3Store(meter=CostMeter())


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
