"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads: multithreaded reductions
# reorder float sums under load, which can flip knife-edge convergence
# assertions between runs. Single-threaded numpy is bit-deterministic
# (and faster on this suite's small matrices).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.pricing.meter import CostMeter
from repro.simulation.engine import Engine
from repro.storage.services import S3Store


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def s3() -> S3Store:
    return S3Store(meter=CostMeter())


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
