"""Scenario fuzzer: space determinism, shrinking, corpus, bug detection.

The chaos suite's own contract is tested at three levels: the sampler
(content-addressed, valid, byte-stable), the machinery (shrinker and
corpus with synthetic invariants — no trainings), and the whole loop
(a deliberately broken aggregation fold must be *caught* by a campaign
and *shrunk* to a minimal repro; restoring the fold turns it green).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal

import pytest

import repro.comm.patterns as patterns
from repro.comm.aggregator import reduce_vectors as true_reduce_vectors
from repro.core.config import config_validity_error
from repro.errors import FuzzError
from repro.fuzz import (
    INVARIANTS,
    CorpusEntry,
    Invariant,
    ScenarioSpace,
    load_corpus,
    load_entry,
    plan_campaign,
    replay_entry,
    run_campaign,
    save_entry,
    shrink,
    sibling_kwargs,
)
from repro.fuzz.shrink import MAX_EVALS


class TestScenarioSpace:
    def test_sampling_is_byte_identical_across_instances(self):
        first = ScenarioSpace(0).scenarios(50)
        second = ScenarioSpace(0).scenarios(50)
        assert [s.config_kwargs for s in first] == [s.config_kwargs for s in second]

    def test_every_scenario_is_a_valid_config(self):
        for scenario in ScenarioSpace(3).scenarios(100):
            assert config_validity_error(scenario.config_kwargs) is None

    def test_scenario_id_alone_reproduces_the_kwargs(self):
        scenario = ScenarioSpace(0).scenario(17)
        again = ScenarioSpace.from_id(scenario.scenario_id)
        assert again.config_kwargs == scenario.config_kwargs
        assert again.scenario_id == "0:17"

    def test_different_seeds_sample_different_scenarios(self):
        a = [s.config_kwargs for s in ScenarioSpace(0).scenarios(20)]
        b = [s.config_kwargs for s in ScenarioSpace(1).scenarios(20)]
        assert a != b

    def test_bad_scenario_id_is_rejected(self):
        with pytest.raises(FuzzError, match="expected 'seed:index'"):
            ScenarioSpace.from_id("not-an-id")

    def test_space_covers_the_major_axes(self):
        """The conditioned sampler must not silently starve an axis."""
        scenarios = ScenarioSpace(0).scenarios(200)
        kwargs = [s.config_kwargs for s in scenarios]
        systems = {k["system"] for k in kwargs}
        assert systems >= {"lambdaml", "pytorch", "hybridps"}
        assert {k["algorithm"] for k in kwargs} >= {"ma_sgd", "ga_sgd", "admm", "em"}
        assert any(k.get("protocol") == "asp" for k in kwargs)
        assert any("mttf_s" in k for k in kwargs)
        assert any("storage_error_rate" in k for k in kwargs)
        assert any(k.get("checkpoint_interval", 1) > 1 for k in kwargs)


class TestCampaignPlan:
    def test_plan_is_deterministic_and_gates_every_scenario(self):
        plan = plan_campaign(seed=0, budget=30)
        again = plan_campaign(seed=0, budget=30)
        assert plan == again
        # `completes` has probability 1.0: every scenario runs it.
        assert all("completes" in task.invariants for task in plan)
        # The gated invariants must each land on *some* scenario.
        gated = {name for task in plan for name in task.invariants}
        assert {"determinism_under_rerun", "stat_sibling_invariance"} <= gated

    def test_sibling_prefers_the_platform_flip(self):
        sibling = sibling_kwargs(
            {"model": "lr", "dataset": "higgs", "system": "lambdaml", "workers": 4}
        )
        assert sibling["system"] == "pytorch"

    def test_platform_flip_drops_faas_axes_and_fault_plane(self):
        sibling = sibling_kwargs(
            {
                "model": "lr",
                "dataset": "higgs",
                "system": "lambdaml",
                "workers": 4,
                "channel": "redis",
                "pattern": "scatterreduce",
                "mttf_s": 90.0,
                "checkpoint_interval": 2,
            }
        )
        assert sibling["system"] == "pytorch"
        for gone in ("channel", "pattern", "mttf_s", "checkpoint_interval"):
            assert gone not in sibling


# A synthetic invariant lets the shrinker be tested without trainings:
# it "fails" iff workers >= 3 and a channel is set.
def _needs_three_workers_and_channel(kwargs):
    if kwargs.get("workers", 10) >= 3 and "channel" in kwargs:
        return "synthetic failure"
    return None


_SYNTHETIC = Invariant(
    name="synthetic",
    description="test-only",
    probability=1.0,
    applies=lambda kwargs: True,
    check=_needs_three_workers_and_channel,
)


class TestShrink:
    def test_shrinker_drops_irrelevant_fields_and_minimises_ladders(self):
        bloated = {
            "model": "lr",
            "dataset": "higgs",
            "system": "lambdaml",
            "workers": 8,
            "channel": "redis",
            "pattern": "scatterreduce",
            "straggler_jitter": 0.2,
            "mttf_s": 90.0,
            "data_scale": 200,
            "max_epochs": 2,
            "seed": 20210620,
        }
        result = shrink(_SYNTHETIC, bloated, "synthetic failure")
        assert result.message == "synthetic failure"
        # Every field the failure does not need is gone...
        for gone in ("pattern", "straggler_jitter", "mttf_s", "seed"):
            assert gone not in result.kwargs
        # ...the load-bearing ones survive, minimised along the ladder
        # (workers=2 passes the predicate, so 3 is the true floor).
        assert result.kwargs["workers"] == 3
        assert "channel" in result.kwargs
        assert result.evals <= MAX_EVALS

    def test_shrinker_never_probes_invalid_configs(self):
        probed = []

        def recording_check(kwargs):
            probed.append(dict(kwargs))
            return "still failing"

        inv = Invariant(
            name="recorder", description="", probability=1.0,
            applies=lambda kwargs: True, check=recording_check,
        )
        start = {"model": "kmeans", "dataset": "higgs", "algorithm": "em",
                 "k": 5, "workers": 4, "data_scale": 500, "max_epochs": 1}
        shrink(inv, start, "still failing")
        for kwargs in probed:
            assert config_validity_error(kwargs) is None


class TestCorpus:
    def test_save_load_roundtrip(self, tmp_path):
        entry = CorpusEntry(
            invariant="completes",
            config_kwargs={"model": "lr", "dataset": "higgs", "workers": 2,
                           "data_scale": 500, "max_epochs": 1},
            scenario_id="0:5",
            message="it broke",
            shrunk_fields=["channel"],
        )
        path = save_entry(tmp_path, entry)
        assert path.name == "completes-0-5.json"
        assert load_entry(path) == entry
        assert load_corpus(tmp_path) == [entry]

    def test_unknown_invariant_is_rejected_at_replay(self):
        entry = CorpusEntry(
            invariant="no_such_property", config_kwargs={}, scenario_id="0:0",
            message="",
        )
        with pytest.raises(FuzzError, match="unknown invariant"):
            replay_entry(entry)

    def test_wrong_schema_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "invariant": "completes"}))
        with pytest.raises(FuzzError, match="schema"):
            load_entry(path)

    def test_missing_corpus_dir_is_empty_not_an_error(self, tmp_path):
        assert load_corpus(tmp_path / "nowhere") == []


def _reversed_fold(vectors, reduce):
    return true_reduce_vectors(list(reversed(vectors)), reduce)


from repro.fuzz.runner import _check_task as _real_check_task


def _suicidal_check_task(task):
    """Pool-side stand-in that dies hard on one scenario (fork-inherited)."""
    if task.index == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return _real_check_task(task)


class TestCampaignResilience:
    @pytest.mark.slow
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the suicidal stand-in reaches pool children via fork",
    )
    def test_dead_fuzz_worker_is_a_finding_not_a_hang(self, monkeypatch):
        import repro.fuzz.runner as runner

        monkeypatch.setattr(runner, "_check_task", _suicidal_check_task)
        result = run_campaign(
            budget=3, seed=0, workers=2, corpus_dir=None, shrink_failures=False,
        )
        # The campaign finished; the OOM-killed scenario is one finding.
        assert result.scenarios == 3
        deaths = [f for f in result.findings if f.invariant == "process_survives"]
        assert len(deaths) == 1
        assert deaths[0].scenario_id == "0:1"
        assert "died" in deaths[0].message
        # Death findings have no in-process check to shrink against.
        assert deaths[0].shrunk_kwargs is None
        # The other scenarios were still checked.
        others = {f.scenario_id for f in result.findings} - {"0:1"}
        assert result.checks["completes"] == 3
        assert not others  # healthy engine: nothing else failed


class TestChaosCatchesRealBugs:
    """Break the engine on purpose; the suite must notice and minimise."""

    # The canonical-rank-order fold guarantee, violated only on the
    # FaaS side (iaas/mpi.py binds reduce_vectors separately), caught
    # by the platform-flip sibling check. This is the shrunk repro the
    # shrinker itself produces from campaign counterexamples.
    MINIMAL_BROKEN = {
        "model": "kmeans", "dataset": "higgs", "algorithm": "em",
        "workers": 3, "data_scale": 500, "max_epochs": 1, "seed": 3,
    }

    def test_reversed_fold_is_caught_and_shrunk(self, monkeypatch):
        inv = INVARIANTS["stat_sibling_invariance"]
        bloated = {
            **self.MINIMAL_BROKEN,
            "k": 10, "workers": 4, "batch_size": 4096,
            "straggler_jitter": 0.05, "seed": 11, "system": "pytorch",
        }
        assert inv.check(dict(bloated)) is None  # healthy engine: holds

        monkeypatch.setattr(patterns, "reduce_vectors", _reversed_fold)
        message = inv.check(dict(bloated))
        assert message is not None and "loss trajectory" in message

        result = shrink(inv, bloated, message)
        # A reversed fold over two contributions is commutatively
        # identical, so the true minimal worker count is three.
        assert result.kwargs["workers"] == 3
        assert len(result.kwargs) < len(bloated)

    def test_minimal_repro_is_green_on_the_healthy_engine(self):
        inv = INVARIANTS["stat_sibling_invariance"]
        assert inv.check(dict(self.MINIMAL_BROKEN)) is None

    @pytest.mark.slow
    def test_campaign_catches_the_reversed_fold_within_budget(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(patterns, "reduce_vectors", _reversed_fold)
        # workers=1: the monkeypatch only exists in this process. The
        # eval cap keeps the two shrinks inside the per-test timeout;
        # minimality is asserted by the dedicated shrinker tests.
        result = run_campaign(
            budget=4, seed=0, workers=1, corpus_dir=tmp_path,
            shrink_failures=True, shrink_max_evals=12,
        )
        assert not result.ok
        finding = result.findings[0]
        assert finding.invariant == "stat_sibling_invariance"
        assert finding.shrunk_kwargs is not None
        assert len(finding.shrunk_kwargs) <= len(finding.config_kwargs)
        assert finding.corpus_path is not None
        # The saved counterexample replays red while the bug exists...
        entry = load_entry(finding.corpus_path)
        assert replay_entry(entry) is not None
        # ...and green once the fold is restored.
        monkeypatch.setattr(patterns, "reduce_vectors", true_reduce_vectors)
        assert replay_entry(entry) is None
