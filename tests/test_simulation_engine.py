"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, KeyNotFoundError, SimulationError
from repro.simulation.commands import (
    Collective,
    CollectiveGroup,
    Compute,
    Delete,
    Get,
    Join,
    ListKeys,
    Put,
    Sleep,
    Spawn,
    WaitKey,
    WaitKeyCount,
)
from repro.simulation.engine import Engine, ProcessState
from repro.storage.services import S3Store


def test_sleep_advances_clock(engine):
    def proc():
        yield Sleep(5.0)
        return engine.now

    p = engine.spawn(proc(), "sleeper")
    engine.run()
    assert p.result == pytest.approx(5.0)
    assert engine.now == pytest.approx(5.0)


def test_compute_charges_compute_category(engine):
    def proc():
        yield Compute(2.5)

    p = engine.spawn(proc(), "worker")
    engine.run()
    assert p.trace.get("compute") == pytest.approx(2.5)


def test_processes_interleave_deterministically(engine):
    order = []

    def proc(name, delay):
        yield Sleep(delay)
        order.append(name)

    engine.spawn(proc("b", 2.0), "b")
    engine.spawn(proc("a", 1.0), "a")
    engine.run()
    assert order == ["a", "b"]


def test_put_then_get_roundtrip(engine, s3):
    def proc():
        yield Put(s3, "key", {"x": 1})
        value = yield Get(s3, "key")
        return value

    p = engine.spawn(proc(), "worker")
    engine.run()
    assert p.result == {"x": 1}


def test_get_missing_key_raises_into_process(engine, s3):
    def proc():
        try:
            yield Get(s3, "absent")
        except KeyNotFoundError:
            return "caught"
        return "not caught"

    p = engine.spawn(proc(), "worker")
    engine.run()
    assert p.result == "caught"


def test_get_sees_only_completed_puts(engine):
    """A get completing before a put's completion must miss the object."""
    store = S3Store()
    outcome = {}

    def slow_writer():
        # 64 MB at 65 MB/s: completes around t ~ 1s.
        import numpy as np

        from repro.utils.serialization import SizedPayload

        yield Put(store, "big", SizedPayload(np.zeros(4), 64 * 1024 * 1024))

    def early_reader():
        try:
            yield Get(store, "big")
            outcome["saw"] = True
        except KeyNotFoundError:
            outcome["saw"] = False

    engine.spawn(slow_writer(), "writer")
    engine.spawn(early_reader(), "reader")
    engine.run()
    assert outcome["saw"] is False


def test_wait_key_wakes_after_put(engine, s3):
    times = {}

    def writer():
        yield Sleep(3.0)
        yield Put(s3, "flag", 1)

    def waiter():
        yield WaitKey(s3, "flag", poll_interval=0.1)
        times["woke"] = engine.now

    engine.spawn(writer(), "writer")
    engine.spawn(waiter(), "waiter")
    engine.run()
    # Wakes at put-visibility plus one poll interval.
    assert times["woke"] >= 3.0
    assert times["woke"] <= 3.0 + s3.profile.latency_s + 0.2 + 1e-9


def test_wait_key_count(engine, s3):
    def writer(i):
        yield Sleep(float(i))
        yield Put(s3, f"parts/{i}", i)

    def waiter():
        yield WaitKeyCount(s3, "parts/", 3, poll_interval=0.05)
        return engine.now

    for i in range(3):
        engine.spawn(writer(i), f"w{i}")
    p = engine.spawn(waiter(), "waiter")
    engine.run()
    assert p.result >= 2.0  # last part written at t>=2


def test_deadlock_detection(engine, s3):
    def waiter():
        yield WaitKey(s3, "never", poll_interval=0.1)

    engine.spawn(waiter(), "stuck")
    with pytest.raises(DeadlockError):
        engine.run()


def test_daemon_processes_do_not_deadlock(engine, s3):
    def waiter():
        yield WaitKey(s3, "never", poll_interval=0.1)

    engine.spawn(waiter(), "daemon", daemon=True)
    engine.run()  # no DeadlockError


def test_spawn_and_join(engine):
    def child():
        yield Sleep(2.0)
        return 42

    def parent():
        proc = yield Spawn(child(), "child")
        result = yield Join(proc)
        return result

    p = engine.spawn(parent(), "parent")
    engine.run()
    assert p.result == 42
    assert engine.now == pytest.approx(2.0)


def test_join_propagates_exception(engine):
    def child():
        yield Sleep(1.0)
        raise ValueError("boom")

    def parent():
        proc = yield Spawn(child(), "child")
        try:
            yield Join(proc)
        except ValueError as exc:
            return str(exc)

    local = Engine(on_error="record")
    p = local.spawn(parent(), "parent")
    local.run()
    assert p.result == "boom"


def test_failed_process_recorded_when_on_error_record():
    engine = Engine(on_error="record")

    def bad():
        yield Sleep(1.0)
        raise RuntimeError("nope")

    p = engine.spawn(bad(), "bad")
    engine.run()
    assert p.state is ProcessState.FAILED
    assert isinstance(p.exception, RuntimeError)


def test_failed_process_raises_by_default(engine):
    def bad():
        yield Sleep(1.0)
        raise RuntimeError("nope")

    engine.spawn(bad(), "bad")
    with pytest.raises(RuntimeError):
        engine.run()


def test_kill_terminates_process(engine):
    def loops():
        while True:
            yield Sleep(1.0)

    p = engine.spawn(loops(), "loops")
    engine.run(until=5.0)
    engine.kill(p)
    engine.run()
    assert p.state is ProcessState.KILLED


def test_collective_rendezvous(engine):
    group = CollectiveGroup(
        name="g",
        size=3,
        reduce_fn=lambda values: sum(values),
        time_fn=lambda nbytes, size: 1.0,
    )
    results = {}

    def member(i):
        yield Sleep(float(i))
        merged = yield Collective(group, value=i)
        results[i] = (merged, engine.now)

    for i in range(3):
        engine.spawn(member(i), f"m{i}")
    engine.run()
    # Everyone gets the same reduction at the same completion time.
    assert all(v[0] == 3 for v in results.values())
    times = [v[1] for v in results.values()]
    assert all(t == pytest.approx(3.0) for t in times)  # last arrival (2.0) + 1.0


def test_collective_multiple_rounds(engine):
    group = CollectiveGroup(
        name="g", size=2, reduce_fn=sum, time_fn=lambda n, s: 0.5
    )
    log = []

    def member(i):
        for round_index in range(3):
            merged = yield Collective(group, value=round_index)
            log.append((i, round_index, merged))

    engine.spawn(member(0), "m0")
    engine.spawn(member(1), "m1")
    engine.run()
    assert len(log) == 6
    for _, round_index, merged in log:
        assert merged == 2 * round_index


def test_negative_sleep_rejected(engine):
    def proc():
        yield Sleep(-1.0)

    engine.spawn(proc(), "bad")
    with pytest.raises(SimulationError):
        engine.run()


def test_list_keys(engine, s3):
    def proc():
        yield Put(s3, "a/1", 1)
        yield Put(s3, "a/2", 2)
        yield Put(s3, "b/1", 3)
        keys = yield ListKeys(s3, "a/")
        return keys

    p = engine.spawn(proc(), "worker")
    engine.run()
    assert p.result == ["a/1", "a/2"]


def test_delete_removes_key(engine, s3):
    def proc():
        yield Put(s3, "k", 1)
        yield Delete(s3, "k")
        try:
            yield Get(s3, "k")
        except KeyNotFoundError:
            return "gone"

    p = engine.spawn(proc(), "worker")
    engine.run()
    assert p.result == "gone"


def test_run_until_pauses_and_resumes(engine):
    def proc():
        yield Sleep(10.0)
        return "done"

    p = engine.spawn(proc(), "worker")
    engine.run(until=5.0)
    assert engine.now == pytest.approx(5.0)
    assert p.state is ProcessState.BLOCKED
    engine.run()
    assert p.result == "done"
