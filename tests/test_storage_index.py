"""Unit tests for the storage data-plane index and batched billing.

Covers the chunked ordered key index (:mod:`repro.storage.
ordered_index`) directly — randomized cross-checks against a flat
sorted-list reference model plus adversarial key sequences — and
through :mod:`repro.storage.base`'s registered-prefix live counters,
the float-heap slot picker in :mod:`repro.simulation.resources`, the
batched poll billing, the payload sizing fast path, and the
communication patterns' round-file garbage collection.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort

import numpy as np
import pytest

from repro.pricing.meter import CostMeter
from repro.simulation.commands import Put, WaitKeyCount
from repro.simulation.engine import Engine
from repro.simulation.resources import ServiceQueue
from repro.storage.base import ObjectStore, StorageProfile, _prefix_upper_bound
from repro.storage.ordered_index import OrderedKeyIndex
from repro.storage.services import S3Store
from repro.utils.serialization import SizedPayload, payload_nbytes


def make_store() -> ObjectStore:
    return ObjectStore(
        StorageProfile(name="mem", latency_s=0.0, bandwidth_bps=1e9, concurrency=4)
    )


class TestPrefixUpperBound:
    def test_simple(self):
        assert _prefix_upper_bound("ab") == "ac"

    def test_empty_means_unbounded(self):
        assert _prefix_upper_bound("") is None

    def test_trailing_max_char_carries(self):
        top = chr(0x10FFFF)
        assert _prefix_upper_bound("a" + top) == "b"
        assert _prefix_upper_bound(top * 3) is None


class TestSortedIndex:
    def test_list_matches_brute_force(self):
        store = make_store()
        rng = np.random.default_rng(3)
        alphabet = list("abc/_")
        keys = {
            "".join(rng.choice(alphabet, size=rng.integers(1, 10)))
            for _ in range(200)
        }
        for key in keys:
            store._do_put(key, 1)
        for prefix in ["", "a", "ab", "c/", "zz", "a" * 12]:
            expected = sorted(k for k in keys if k.startswith(prefix))
            assert store._do_list(prefix) == expected
            assert store._count_prefix(prefix) == len(expected)

    def test_overwrite_does_not_duplicate(self):
        store = make_store()
        store._do_put("k", 1)
        store._do_put("k", 2)
        assert store._do_list("") == ["k"]
        assert len(store) == 1
        assert store.peek("k") == 2

    def test_delete_and_discard_update_index(self):
        store = make_store()
        for key in ("p/1", "p/2", "q/1"):
            store._do_put(key, 0)
        store._do_delete("p/1")
        store.discard("q/1")
        store._do_delete("absent")  # idempotent
        assert store._do_list("") == ["p/2"]
        assert store._count_prefix("p/") == 1

    def test_seed_object_is_indexed(self):
        store = make_store()
        store.seed_object("data/part_0", "x")
        assert store._do_list("data/") == ["data/part_0"]
        assert store._count_prefix("data/") == 1


class _ReferenceModel:
    """Flat sorted list with the exact semantics the chunked index claims."""

    def __init__(self):
        self.keys: list[str] = []

    def add(self, key):
        insort(self.keys, key)

    def remove(self, key):
        self.keys.remove(key)

    def list_range(self, lo, hi):
        start = bisect_left(self.keys, lo)
        stop = len(self.keys) if hi is None else bisect_left(self.keys, hi)
        return self.keys[start:stop]

    def count_range(self, lo, hi):
        return len(self.list_range(lo, hi))


class TestOrderedKeyIndex:
    """The chunked sorted list vs the flat reference, op for op.

    Small ``load`` factors force constant split/merge churn, so the
    rebalancing paths are exercised by every test, not just at 10^5+
    keys.
    """

    @pytest.mark.parametrize("load", [4, 32, 512])
    def test_randomized_against_reference(self, load):
        rng = random.Random(20210620 + load)
        index, ref = OrderedKeyIndex(load=load), _ReferenceModel()
        present: set[str] = set()
        for step in range(4000):
            roll = rng.random()
            if roll < 0.55 or not present:
                key = f"{rng.randrange(40):03d}/{rng.randrange(500):04d}"
                if key not in present:
                    present.add(key)
                    index.add(key)
                    ref.add(key)
            elif roll < 0.85:
                key = rng.choice(ref.keys)
                present.discard(key)
                index.remove(key)
                ref.remove(key)
            else:
                lo = f"{rng.randrange(40):03d}"
                hi = None if rng.random() < 0.3 else _prefix_upper_bound(lo)
                assert index.list_range(lo, hi) == ref.list_range(lo, hi)
                assert index.count_range(lo, hi) == ref.count_range(lo, hi)
            if step % 500 == 0:
                assert list(index) == ref.keys
                assert len(index) == len(ref.keys)
        assert list(index) == ref.keys

    @pytest.mark.parametrize(
        "sequence_name", ["ascending", "descending", "sawtooth", "hotspot"]
    )
    def test_adversarial_sequences(self, sequence_name):
        """Orders chosen to stress one rebalancing path each.

        ascending appends to the last chunk forever (split-heavy tail);
        descending inserts at position 0 of the first chunk; sawtooth
        alternates insert/delete at the same boundary to hunt for
        split/merge ping-pong; hotspot drains a single chunk through
        the merge path while neighbours stay full.
        """
        n = 600
        if sequence_name == "ascending":
            ops = [("add", f"k{i:05d}") for i in range(n)]
            ops += [("remove", f"k{i:05d}") for i in range(n)]
        elif sequence_name == "descending":
            ops = [("add", f"k{n - i:05d}") for i in range(n)]
            ops += [("remove", f"k{n - i:05d}") for i in range(n)]
        elif sequence_name == "sawtooth":
            ops = [("add", f"k{i:05d}") for i in range(n)]
            for i in range(n // 2):
                ops.append(("remove", f"k{i:05d}"))
                ops.append(("add", f"k{i:05d}"))
        else:  # hotspot: fill three bands, drain the middle one
            ops = [("add", f"{band}/{i:05d}") for band in "abc" for i in range(n)]
            ops += [("remove", f"b/{i:05d}") for i in range(n)]
        index, ref = OrderedKeyIndex(load=8), _ReferenceModel()
        for op, key in ops:
            getattr(index, op)(key)
            getattr(ref, op)(key)
        assert list(index) == ref.keys
        assert len(index) == len(ref.keys)
        for lo in ("", "a/", "b/", "k00100", "zzz"):
            hi = _prefix_upper_bound(lo)
            assert index.list_range(lo, hi) == ref.list_range(lo, hi)
            assert index.count_range(lo, hi) == ref.count_range(lo, hi)

    def test_chunks_stay_bounded_under_churn(self):
        """No sublist may outgrow 2*load — the bounded-memmove claim."""
        load = 16
        index = OrderedKeyIndex(load=load)
        rng = random.Random(7)
        live: list[str] = []
        for _ in range(5000):
            if rng.random() < 0.6 or not live:
                key = f"{rng.randrange(10**6):07d}"
                if key not in index:
                    index.add(key)
                    live.append(key)
            else:
                key = live.pop(rng.randrange(len(live)))
                index.remove(key)
            assert all(len(sub) <= 2 * load for sub in index._lists)
            assert all(sub for sub in index._lists)  # no empty chunks
            assert [sub[-1] for sub in index._lists] == index._maxes

    def test_membership_and_errors(self):
        index = OrderedKeyIndex(load=4)
        for key in ("a", "b", "c"):
            index.add(key)
        assert "b" in index and "bb" not in index and "z" not in index
        with pytest.raises(KeyError):
            index.remove("zzz")  # above every chunk max
        with pytest.raises(KeyError):
            index.remove("ab")  # inside range, absent
        assert list(index) == ["a", "b", "c"]

    def test_empty_index_queries(self):
        index = OrderedKeyIndex()
        assert list(index) == []
        assert len(index) == 0
        assert "x" not in index
        assert index.list_range("", None) == []
        assert index.count_range("a", "b") == 0


class TestRegisteredPrefixCounters:
    def test_register_then_put_then_count(self):
        store = make_store()
        store._do_put("r/a", 0)
        assert store.register_prefix("r/") == 1
        store._do_put("r/b", 0)
        store._do_put("s/other", 0)
        assert store._count_prefix("r/") == 2
        # Counter answer must agree with the bisect answer.
        assert store._count_prefix("r/") == len(store._do_list("r/"))

    def test_interleaved_deletes_keep_counter_live(self):
        store = make_store()
        store.register_prefix("x/")
        for i in range(5):
            store._do_put(f"x/{i}", i)
        store._do_delete("x/1")
        store.discard("x/3")
        store._do_put("x/1", "again")
        assert store._count_prefix("x/") == 4
        assert store._count_prefix("x/") == len(store._do_list("x/"))

    def test_nested_prefixes_both_counted(self):
        store = make_store()
        store.register_prefix("a/")
        store.register_prefix("a/b/")
        store._do_put("a/b/1", 0)
        store._do_put("a/c/1", 0)
        assert store._count_prefix("a/") == 2
        assert store._count_prefix("a/b/") == 1
        assert list(store.matching_registered_prefixes("a/b/1")) == ["a/", "a/b/"]

    def test_register_idempotent_and_unregister_falls_back(self):
        store = make_store()
        store._do_put("p/1", 0)
        assert store.register_prefix("p/") == 1
        assert store.register_prefix("p/") == 1  # idempotent re-register
        store.unregister_prefix("p/")
        store.unregister_prefix("p/")  # idempotent removal
        store._do_put("p/2", 0)
        assert store._count_prefix("p/") == 2  # bisect fallback agrees


class TestEngineWaitersWithDeletes:
    def test_count_waiter_sees_interleaved_deletes(self):
        """A deleted contribution must keep the waiter blocked."""
        engine = Engine()
        store = S3Store()
        woken_at = {}

        def writer():
            yield Put(store, "w/0", 0)
            yield Put(store, "w/1", 1)
            # Zero-time removal between puts: count goes 2 -> 1.
            store.discard("w/1")
            yield Put(store, "w/2", 2)
            yield Put(store, "w/3", 3)

        def waiter():
            yield WaitKeyCount(store, "w/", 3, poll_interval=0.01)
            woken_at["t"] = engine.now

        engine.spawn(writer(), "writer")
        engine.spawn(waiter(), "waiter")
        engine.run()
        # Third *surviving* key is w/3, visible only at the fourth put.
        assert woken_at["t"] >= 4 * store.profile.latency_s

    def test_exact_key_wakeups_leave_other_waiters_blocked(self):
        from repro.errors import DeadlockError
        from repro.simulation.commands import WaitKey

        engine = Engine()
        store = S3Store()

        def writer():
            yield Put(store, "present", 1)

        def waiter():
            yield WaitKey(store, "never", poll_interval=0.01)

        engine.spawn(writer(), "writer")
        engine.spawn(waiter(), "stuck")
        with pytest.raises(DeadlockError, match="waiting on storage"):
            engine.run()


class TestServiceQueueHeap:
    def test_matches_linear_reference(self):
        """Float-heap booking must match the linear argmin reference.

        The queue no longer tracks slot indices at all — only the
        multiset of free times — so this checks the observational
        claim directly: (start, completion) and busy_until equal the
        per-slot reference at every step.
        """
        rng = np.random.default_rng(11)
        for slots in (1, 3, 8):
            q = ServiceQueue(slots)
            free_at = [0.0] * slots  # reference implementation
            for _ in range(300):
                arrival = float(rng.uniform(0, 50))
                duration = float(rng.uniform(0.01, 5))
                idx = min(range(slots), key=lambda i: free_at[i])
                start = max(arrival, free_at[idx])
                free_at[idx] = start + duration
                assert q.schedule(arrival, duration) == (start, start + duration)
                assert q.busy_until == max(free_at)


class TestBatchedPollBilling:
    def test_batched_polls_equal_per_call_billing(self):
        batched, looped = CostMeter(), CostMeter()
        store_batched = S3Store(meter=batched)
        store_batched.record_polls(1237)
        for _ in range(1237):
            looped.bill_s3_request("list")
        assert batched.dollars["s3"] == looped.dollars["s3"]  # bit-identical
        assert batched.counters["s3_list"] == looped.counters["s3_list"] == 1237

    def test_dynamodb_batched_counts(self):
        meter = CostMeter()
        meter.bill_dynamodb_request("get", 0, count=10)
        reference = CostMeter()
        for _ in range(10):
            reference.bill_dynamodb_request("get", 0)
        assert meter.dollars["dynamodb"] == reference.dollars["dynamodb"]
        assert meter.counters["dynamodb_get"] == 10


class TestPayloadFastPath:
    def test_fast_and_general_agree(self):
        samples = [
            SizedPayload(np.zeros(2), 12345),
            np.zeros(7, dtype=np.float32),
            b"abc",
            bytearray(b"abcd"),
            "héllo",
            7,
            3.5,
            True,
            None,
            {"key": np.zeros(4), "n": 1},
            [1, "two", b"three"],
            (1.0, 2.0),
            {9, 10},
            np.float64(2.5),  # float subclass -> slow path
            object(),  # unknown -> 64
        ]
        from repro.utils.serialization import _payload_nbytes_general

        for obj in samples:
            assert payload_nbytes(obj) == _payload_nbytes_general(obj)

    def test_hot_key_memoized_size_is_stable(self):
        assert payload_nbytes("ar/r0/merged") == payload_nbytes("ar/r0/merged")
        assert payload_nbytes("é") == 2


class TestRoundFileGC:
    @pytest.mark.parametrize("pattern_name", ["allreduce", "scatterreduce"])
    def test_rounds_do_not_accumulate_objects(self, pattern_name):
        from repro.comm.patterns import PATTERNS, allreduce, scatter_reduce

        pattern = allreduce if pattern_name == "allreduce" else scatter_reduce
        assert PATTERNS[
            "allreduce" if pattern_name == "allreduce" else "scatterreduce"
        ] is pattern
        engine = Engine()
        store = S3Store()
        store.available_at = 0.0
        workers, rounds = 4, 3
        vector = np.ones(16)

        def worker(rank):
            for r in range(rounds):
                merged = yield from pattern(
                    store, rank, workers, f"r{r}", vector, 1024
                )
                assert merged is not None

        for rank in range(workers):
            engine.spawn(worker(rank), f"w{rank}")
        engine.run()
        leftovers = store._do_list("")
        assert leftovers == [], f"leaked round files: {leftovers}"

    def test_retried_round_survives_aborted_reader(self):
        """A re-run round id must not inherit stale last-reader counts.

        One worker dies mid-gather (after some of its Gets already
        decremented counters); the whole round is retried with the same
        round id on the same store. Producer-armed counters reset on
        the retry's puts, so no live reader loses a file early.
        """
        from repro.comm.patterns import scatter_reduce

        store = S3Store()
        store.available_at = 0.0
        workers = 3
        vector = np.ones(9)

        def attempt(engine, rank):
            merged = yield from scatter_reduce(
                store, rank, workers, "r0", vector, 512
            )
            assert merged.shape == vector.shape

        first = Engine()
        procs = [first.spawn(attempt(first, r), f"w{r}") for r in range(workers)]
        # Kill worker 2 mid-run: depending on timing it may already
        # have decremented some merged_* counters.
        first.run(until=0.6)
        first.kill(procs[2])
        for proc in procs[:2]:
            if proc.alive:
                first.kill(proc)

        retry = Engine()
        for rank in range(workers):
            retry.spawn(attempt(retry, rank), f"retry-w{rank}")
        retry.run()  # must not raise KeyNotFoundError
        assert store._do_list("sr/") == []

    def test_single_worker_allreduce_leaves_nothing(self):
        from repro.comm.patterns import allreduce

        engine = Engine()
        store = S3Store()
        store.available_at = 0.0

        def solo():
            merged = yield from allreduce(store, 0, 1, "r0", np.ones(4), 64)
            assert merged is not None

        engine.spawn(solo(), "solo")
        engine.run()
        assert store._do_list("") == []
