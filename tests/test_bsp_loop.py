"""Unit tests for the shared BSP loop using a scripted exchange."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bsp_loop import bsp_rounds
from repro.core.config import TrainingConfig
from repro.core.context import JobContext, WorkerOutcome
from repro.simulation.commands import Sleep


def _context(**overrides) -> JobContext:
    base = dict(
        model="lr",
        dataset="higgs",
        algorithm="ma_sgd",
        system="lambdaml",
        # Four workers: an 8 GB Higgs partition must stay under the
        # 3 GB function memory envelope (8/4 = 2 GB each).
        workers=4,
        channel="s3",
        batch_size=10_000,
        lr=0.05,
        loss_threshold=0.66,
        max_epochs=6,
        seed=21,
    )
    base.update(overrides)
    ctx = JobContext(TrainingConfig(**base))
    ctx.setup_faas()
    return ctx


def _run_lockstep(ctx) -> list[WorkerOutcome]:
    """Drive bsp_rounds for all workers with an in-memory exchange."""
    pending: dict[str, list] = {}
    results: dict[str, np.ndarray] = {}
    workers = ctx.config.workers

    def make_exchange(rank):
        def exchange(round_id, wire, nbytes):
            # Rendezvous without any storage: collect every worker's
            # contribution, reduce once, hand the same vector back.
            bucket = pending.setdefault(round_id, [])
            bucket.append(np.asarray(wire, dtype=np.float64))
            yield Sleep(0.0)
            while round_id not in results:
                if len(pending[round_id]) == workers:
                    reduce = ctx.algorithms[rank].reduce
                    stacked = np.stack(pending[round_id])
                    results[round_id] = (
                        stacked.mean(axis=0) if reduce == "mean" else stacked.sum(axis=0)
                    )
                else:
                    yield Sleep(0.01)
            return results[round_id]

        return exchange

    procs = [
        ctx.engine.spawn(
            bsp_rounds(ctx, rank, make_exchange(rank)), name=f"w{rank}"
        )
        for rank in range(workers)
    ]
    ctx.engine.run()
    return [p.result for p in procs]


class TestBSPLoop:
    def test_all_workers_agree_on_outcome(self):
        ctx = _context()
        outcomes = _run_lockstep(ctx)
        assert len({o.rounds for o in outcomes}) == 1
        assert len({o.epochs for o in outcomes}) == 1
        losses = [o.final_loss for o in outcomes]
        assert max(losses) - min(losses) < 1e-12  # identical merged loss

    def test_stops_on_threshold(self):
        ctx = _context()
        outcomes = _run_lockstep(ctx)
        assert outcomes[0].final_loss <= 0.66
        assert outcomes[0].epochs < 6

    def test_respects_max_epochs_without_threshold(self):
        ctx = _context(loss_threshold=None, max_epochs=3)
        outcomes = _run_lockstep(ctx)
        assert outcomes[0].epochs == pytest.approx(3.0)

    def test_history_recorded_at_epoch_boundaries(self):
        ctx = _context(loss_threshold=None, max_epochs=3)
        _run_lockstep(ctx)
        epochs_seen = sorted({p.epoch for p in ctx.history})
        assert epochs_seen == [0.0, 1.0, 2.0, 3.0]

    def test_admm_crosses_multiple_epochs_per_round(self):
        ctx = _context(algorithm="admm", loss_threshold=None, max_epochs=20)
        outcomes = _run_lockstep(ctx)
        assert outcomes[0].rounds == 2  # 10 epochs per round
        assert outcomes[0].epochs == pytest.approx(20.0)

    def test_pre_round_hook_invoked(self):
        ctx = _context(loss_threshold=None, max_epochs=2)
        calls = []

        def pre_round(state):
            calls.append((state.epoch_float, state.rounds))
            yield Sleep(0.0)

        pending = {}
        results = {}

        def exchange(round_id, wire, nbytes):
            bucket = pending.setdefault(round_id, [])
            bucket.append(np.asarray(wire, dtype=np.float64))
            yield Sleep(0.0)
            while round_id not in results:
                if len(pending[round_id]) == ctx.config.workers:
                    results[round_id] = np.stack(pending[round_id]).mean(axis=0)
                else:
                    yield Sleep(0.01)
            return results[round_id]

        procs = [
            ctx.engine.spawn(
                bsp_rounds(ctx, rank, exchange, pre_round=pre_round), name=f"w{rank}"
            )
            for rank in range(ctx.config.workers)
        ]
        ctx.engine.run()
        assert len(calls) == 2 * ctx.config.workers  # one per round per worker
